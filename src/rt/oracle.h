// Simulator-as-oracle equivalence harness (DESIGN.md §9).
//
// Byte-identical protocol decisions across backends can only be checked
// under the same delivery order — the interleaving IS the input. So the
// oracle run (discrete-event simulator, seeded delays) records a StepTrace:
// the exact global sequence of scheduler actions it executed — request
// issues, CS exits, per-channel deliveries, crashes, failure-detector
// notices. The rt replay then drives real threads through that trace with
// a single atomic turn counter: step i runs on the owning site's actual
// pump thread, messages flow through the real SPSC rings, and per-channel
// FIFO guarantees the popped message is the one the simulator delivered.
// Both runs capture per-site DecisionLogs; equal logs == the concurrent
// transport carried the exact same protocol execution.
//
// What this does and does not prove: it shows the rt transport preserves
// protocol behaviour under any interleaving the simulator can produce
// (including crash/§6 recovery schedules); it does not explore
// interleavings only real hardware produces — those are covered separately
// by the free-run mode under the merged invariant-checker feed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "mutex/factory.h"
#include "rt/decision_log.h"

namespace dqme::rt {

struct EquivConfig {
  mutex::Algo algo = mutex::Algo::kCaoSinghal;
  int n = 9;
  std::string quorum = "grid";  // quorum algorithms only
  LockId num_locks = 1;
  int requests_per_site = 10;  // CS acquisitions each site performs
  uint64_t seed = 1;
  // Simulated delay: uniform in [mean/2, 3*mean/2] — jitter reorders
  // cross-channel arrivals so the trace exercises real interleavings.
  Time mean_delay = 1000;
  Time hold_ticks = 100;  // CS hold time (mean; jittered per entry)
  Time gap_ticks = 200;   // think time between a site's requests (mean)

  // Crash/§6 recovery script (fault-tolerant Cao-Singhal): crash `victim`
  // at `crash_at`, then deliver failure notices to every live site after
  // detection_latency (+ per-site jitter), exactly mirroring
  // core::FailureDetector.
  bool fault_tolerant = false;
  SiteId crash_victim = kNoSite;
  Time crash_at = 0;
  Time detection_latency = 500;
  Time detection_jitter = 400;
};

// One scheduler action of the oracle run, in global execution order.
struct Step {
  enum Kind : uint8_t {
    kIssue = 0,    // site calls request_cs(lock)
    kExit = 1,     // site calls release_cs(lock)
    kDeliver = 2,  // site pops channel (aux -> site) and dispatches
    kCrash = 3,    // site fails silently
    kNotice = 4,   // site receives failure(aux) from the detector
  };
  uint8_t kind = kIssue;
  SiteId site = kNoSite;  // whose thread of control acts
  SiteId aux = kNoSite;   // kDeliver: channel source; kNotice: the victim
  LockId lock = kLock0;
};

using SiteLogs = std::vector<std::vector<DecisionLog::Record>>;

struct OracleResult {
  std::vector<Step> steps;
  SiteLogs logs;
  uint64_t cs_entries = 0;
  // Every live site completed its script and the run drained.
  bool ok = false;
  std::string error;
};

// Runs the configuration on the discrete-event simulator, recording the
// step trace and per-site decision logs.
OracleResult run_sim_oracle(const EquivConfig& cfg);

// Replays the oracle's step trace on the real-threads backend (one thread
// per site, lock-free rings) and returns the rt decision logs.
SiteLogs run_rt_replay(const EquivConfig& cfg, const std::vector<Step>& steps);

}  // namespace dqme::rt
