// Bounded lock-free single-producer/single-consumer ring buffer — the
// directed-channel primitive of the real-threads backend (DESIGN.md §9).
//
// One rt::Runtime channel (src -> dst) is one SpscRing: only src's pump
// thread pushes, only dst's pump thread pops, so the ring needs exactly one
// producer cursor and one consumer cursor and no CAS anywhere.
//
// Memory-ordering argument (the publish/consume pair):
//   * try_push writes the slot *before* publishing it with
//     tail_.store(release); try_pop observes the tail with load(acquire)
//     before reading the slot. The release/acquire edge on tail_ therefore
//     orders "slot fully written" before "slot read" — the only cross-
//     thread data handoff in the structure.
//   * Symmetrically, try_pop finishes reading the slot *before* retiring it
//     with head_.store(release); try_push observes head_ with load(acquire)
//     before overwriting a retired slot. That edge orders "slot fully read"
//     before "slot reused".
//   * Each thread reads its own cursor relaxed (no one else writes it).
// Cursors are free-running uint64_t (wrap after 2^64 ops — never in a run);
// the index is cursor & mask, so capacity must be a power of two.
//
// Cursors sit on separate cache lines to stop producer/consumer
// false sharing; the slot array is the only shared payload memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace dqme::rt {

template <typename T>
class SpscRing {
 public:
  // `capacity` must be a power of two (mask addressing).
  explicit SpscRing(size_t capacity)
      : slots_(capacity), mask_(capacity - 1) {
    DQME_CHECK_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                   "SpscRing capacity must be a power of two >= 2, got "
                       << capacity);
  }

  // Rings are pinned in place once the Runtime wires its channel matrix;
  // moving one with a concurrent producer/consumer would be a race.
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  // Producer side. Returns false when the ring is full (caller spills).
  bool try_push(const T& v) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= slots_.size())
      return false;
    slots_[tail & mask_] = v;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer-side emptiness probe (exact for the consumer: only it moves
  // head_, and a false "empty" can only mean the producer published later).
  bool empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  const size_t mask_;
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer cursor
};

}  // namespace dqme::rt
