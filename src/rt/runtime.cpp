#include "rt/runtime.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/invariants.h"

namespace dqme::rt {

Runtime::Runtime(int n, RuntimeOptions opts)
    : n_(n),
      opts_(opts),
      sites_(static_cast<size_t>(n), nullptr),
      alive_(static_cast<size_t>(n)),
      timers_(static_cast<size_t>(n)),
      timer_seq_(static_cast<size_t>(n), 0),
      obs_shards_(static_cast<size_t>(n)) {
  DQME_CHECK_MSG(n >= 1, "Runtime needs at least one site");
  channels_.resize(static_cast<size_t>(n) * static_cast<size_t>(n));
  for (auto& c : channels_)
    c.ring = std::make_unique<SpscRing<WireSlot>>(opts_.ring_capacity);
  for (auto& a : alive_) a.store(true, std::memory_order_relaxed);
}

Runtime::~Runtime() {
  // Leak-free teardown even after an aborted run: recycle any payload slot
  // still referenced by an undelivered message.
  drain_residue();
}

void Runtime::attach(SiteId id, net::NetSite* site) {
  DQME_CHECK(0 <= id && id < n_);
  sites_[static_cast<size_t>(id)] = site;
}

void Runtime::enqueue(SiteId src, SiteId dst, const WireSlot& slot) {
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  Channel& c = chan(src, dst);
  // FIFO: anything already spilled goes first; a new message may only take
  // the ring fast path when the spill queue is empty.
  if (!c.spill.empty()) {
    while (!c.spill.empty() && c.ring->try_push(c.spill.front()))
      c.spill.pop_front();
    if (!c.spill.empty()) {
      c.spill.push_back(slot);
      spilled_messages_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  if (!c.ring->try_push(slot)) {
    c.spill.push_back(slot);
    spilled_messages_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Runtime::send(SiteId src, SiteId dst, const net::Message& m,
                   LockId lock) {
  send_bundle(src, dst, &m, 1, lock);
}

void Runtime::send_bundle(SiteId src, SiteId dst, const net::Message* msgs,
                          size_t n, LockId lock) {
  DQME_CHECK(0 <= src && src < n_ && 0 <= dst && dst < n_);
  if (n == 0) return;
  if (!alive(src)) {
    // Fail-silent sender: nothing leaves a crashed site. Release any
    // payload the caller had already attached.
    for (size_t i = 0; i < n; ++i) {
      if (msgs[i].payload != net::kNoPayload) release_payload(msgs[i].payload);
      dropped_at_crashed_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  const Time at = now();
  WireSlot slot;
  slot.lock = lock;
  for (size_t i = 0; i < n; ++i) {
    slot.m = msgs[i];
    slot.m.src = src;
    slot.m.dst = dst;
    slot.m.sent_at = at;
    // Self-addressed messages follow the simulator's semantics: delivered
    // "immediately" (they bypass the wire delay, and their observability
    // event is stamped here, at the send instant — the moment sim-side
    // invariants expect the delivery to have happened). The actual handler
    // still runs from the pump loop, never re-entrantly.
    if (src == dst && opts_.obs_feed) record_deliver(dst, slot.m, lock);
    enqueue(src, dst, slot);
  }
  control_messages_.fetch_add(n, std::memory_order_relaxed);
  if (src == dst) {
    local_messages_.fetch_add(n, std::memory_order_relaxed);
  } else {
    // Piggyback accounting parity with net::Network: one bundle between
    // distinct sites = one wire message (§5 cost model).
    wire_messages_.fetch_add(1, std::memory_order_relaxed);
  }
}

net::KvFields& Runtime::attach_kv(net::Message& m) {
  std::lock_guard<std::mutex> g(payload_mu_);
  uint32_t id;
  if (payload_free_ != kNil) {
    id = payload_free_;
    payload_free_ = payloads_[id].next_free;
  } else {
    id = static_cast<uint32_t>(payloads_.size());
    payloads_.emplace_back();
  }
  payloads_[id].next_free = kNil;
  payloads_acquired_.fetch_add(1, std::memory_order_relaxed);
  m.payload = id;
  return payloads_[id].kv;
}

net::TokenPayload& Runtime::attach_token(net::Message& m) {
  attach_kv(m);  // same slot type; binds m.payload
  std::lock_guard<std::mutex> g(payload_mu_);
  return payloads_[m.payload].token;
}

net::KvFields Runtime::read_kv(const net::Message& m) const {
  DQME_CHECK(m.payload != net::kNoPayload);
  std::lock_guard<std::mutex> g(payload_mu_);
  return payloads_[m.payload].kv;
}

net::TokenPayload Runtime::take_token(const net::Message& m) {
  DQME_CHECK(m.payload != net::kNoPayload);
  std::lock_guard<std::mutex> g(payload_mu_);
  return std::move(payloads_[m.payload].token);
}

void Runtime::release_payload(net::PayloadId id) {
  std::lock_guard<std::mutex> g(payload_mu_);
  PayloadSlot& p = payloads_[id];
  p.token.ln.clear();
  p.token.queue.clear();
  p.kv = net::KvFields{};
  p.next_free = payload_free_;
  payload_free_ = id;
}

uint64_t Runtime::schedule_timeout(SiteId site, Time delay, sim::Callback fn) {
  DQME_CHECK(0 <= site && site < n_ && delay >= 0);
  auto& heap = timers_[static_cast<size_t>(site)];
  Timer t;
  t.deadline = now() + delay;
  t.seq = ++timer_seq_[static_cast<size_t>(site)];
  t.fn = std::move(fn);
  const uint64_t id = t.seq;
  heap.push_back(std::move(t));
  std::push_heap(heap.begin(), heap.end(), timer_later);
  return id;
}

void Runtime::run_due_timers(SiteId site) {
  auto& heap = timers_[static_cast<size_t>(site)];
  if (heap.empty()) return;
  const Time t = now();
  while (!heap.empty() && heap.front().deadline <= t) {
    std::pop_heap(heap.begin(), heap.end(), timer_later);
    sim::Callback fn = std::move(heap.back().fn);
    heap.pop_back();
    fn();
  }
}

void Runtime::crash(SiteId id) {
  DQME_CHECK(0 <= id && id < n_);
  DQME_CHECK_MSG(alive(id), "site " << id << " already crashed");
  alive_[static_cast<size_t>(id)].store(false, std::memory_order_release);
  if (opts_.obs_feed) {
    ObsEvent e;
    e.stamp = next_stamp();
    e.kind = ObsEvent::kCrash;
    e.site = id;
    e.at = now();
    std::lock_guard<std::mutex> g(obs_extra_mu_);
    obs_extra_.push_back(e);
  }
}

void Runtime::record_span(SiteId site, uint8_t kind, LockId lock,
                          SpanId span) {
  if (!opts_.obs_feed) return;
  ObsEvent e;
  e.stamp = next_stamp();
  e.kind = kind;
  e.site = site;
  e.lock = lock;
  e.span = span;
  e.at = now();
  obs_shards_[static_cast<size_t>(site)].push_back(e);
}

void Runtime::record_deliver(SiteId dst, const net::Message& m, LockId lock) {
  ObsEvent e;
  e.stamp = next_stamp();
  e.kind = ObsEvent::kDeliver;
  e.site = dst;
  e.lock = lock;
  e.m = m;
  // The payload slot is recycled the moment the handler returns; sever the
  // handle so the replay can never chase a reused slot.
  e.m.payload = net::kNoPayload;
  e.at = now();
  obs_shards_[static_cast<size_t>(dst)].push_back(e);
}

bool Runtime::dispatch(SiteId dst, const WireSlot& slot) {
  const net::Message& m = slot.m;
  const bool drop = !alive(dst) || !alive(m.src);
  if (drop) {
    if (m.payload != net::kNoPayload) release_payload(m.payload);
    dropped_at_crashed_.fetch_add(1, std::memory_order_relaxed);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  // Self deliveries were recorded at send (sim's immediate-delivery
  // semantics); only wire deliveries are recorded here.
  if (opts_.obs_feed && m.src != dst) record_deliver(dst, m, slot.lock);
  net::NetSite* site = sites_[static_cast<size_t>(dst)];
  DQME_CHECK_MSG(site != nullptr, "delivery to unattached site " << dst);
  site->on_message(m, slot.lock);
  if (m.payload != net::kNoPayload) release_payload(m.payload);
  delivered_messages_.fetch_add(1, std::memory_order_relaxed);
  // Only after the handler returns: in_flight() == 0 means the receiver is
  // done reacting (its own sends were counted before this decrement).
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

bool Runtime::try_deliver_one(SiteId src, SiteId dst) {
  Channel& c = chan(src, dst);
  // Self-channels are exempt from the emulated wire delay, matching the
  // simulator's immediate self-delivery.
  const bool delayed = opts_.wire_delay_us > 0 && src != dst;
  const Time cutoff =
      delayed ? now() - static_cast<Time>(opts_.wire_delay_us) : 0;
  for (;;) {
    if (!c.has_staged) {
      if (!c.ring->try_pop(c.staged)) return false;
      c.has_staged = true;
    }
    // Emulated wire delay: the head message stays staged until its
    // timestamp ages past the delay. Per-producer timestamps are
    // monotonic, so gating only the head preserves channel FIFO.
    if (delayed && c.staged.m.sent_at > cutoff) return false;
    c.has_staged = false;
    if (dispatch(dst, c.staged)) return true;
    // Crash drop: resolved, keep scanning this channel.
  }
}

size_t Runtime::drain(SiteId dst, size_t max) {
  size_t delivered = 0;
  const bool delayed = opts_.wire_delay_us > 0;
  const Time cutoff =
      delayed ? now() - static_cast<Time>(opts_.wire_delay_us) : 0;
  for (SiteId src = 0; src < n_ && delivered < max; ++src) {
    Channel& c = chan(src, dst);
    // Self-channel exemption, as in try_deliver_one.
    const bool gate = delayed && src != dst;
    while (delivered < max) {
      if (!c.has_staged) {
        if (!c.ring->try_pop(c.staged)) break;
        c.has_staged = true;
      }
      if (gate && c.staged.m.sent_at > cutoff) break;
      c.has_staged = false;
      if (dispatch(dst, c.staged)) ++delivered;
    }
  }
  return delivered;
}

void Runtime::flush_spills(SiteId src) {
  for (SiteId dst = 0; dst < n_; ++dst) {
    Channel& c = chan(src, dst);
    while (!c.spill.empty() && c.ring->try_push(c.spill.front()))
      c.spill.pop_front();
  }
}

void Runtime::run(const std::function<bool(SiteId)>& poll) {
  stop_.store(false, std::memory_order_release);
  done_sites_.store(0, std::memory_order_release);
  std::vector<std::thread> pumps;
  pumps.reserve(static_cast<size_t>(n_));
  for (SiteId me = 0; me < n_; ++me) {
    pumps.emplace_back([this, me, &poll] {
      // Batch size: drain deep before yielding, so an oversubscribed host
      // (more pump threads than cores) amortizes each scheduling slice
      // over many deliveries instead of one ping-pong hop.
      constexpr size_t kBatch = 256;
      bool reported_done = false;
      while (!stop_requested()) {
        flush_spills(me);
        const size_t delivered = drain(me, kBatch);
        run_due_timers(me);
        const bool done = poll(me);
        if (done && !reported_done) {
          reported_done = true;
          done_sites_.fetch_add(1, std::memory_order_acq_rel);
        }
        if (done_sites_.load(std::memory_order_acquire) == n_ &&
            in_flight() == 0)
          break;
        if (delivered == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& t : pumps) t.join();
}

uint64_t Runtime::drain_residue() {
  uint64_t discarded = 0;
  WireSlot slot;
  for (auto& c : channels_) {
    if (c.has_staged) {
      c.has_staged = false;
      if (c.staged.m.payload != net::kNoPayload)
        release_payload(c.staged.m.payload);
      ++discarded;
    }
    while (c.ring->try_pop(slot)) {
      if (slot.m.payload != net::kNoPayload) release_payload(slot.m.payload);
      ++discarded;
    }
    for (const WireSlot& s : c.spill) {
      if (s.m.payload != net::kNoPayload) release_payload(s.m.payload);
      ++discarded;
    }
    c.spill.clear();
  }
  if (discarded > 0) {
    dropped_at_crashed_.fetch_add(discarded, std::memory_order_relaxed);
    in_flight_.fetch_sub(discarded, std::memory_order_acq_rel);
  }
  return discarded;
}

RuntimeStats Runtime::stats() const {
  RuntimeStats s;
  s.wire_messages = wire_messages_.load(std::memory_order_relaxed);
  s.control_messages = control_messages_.load(std::memory_order_relaxed);
  s.local_messages = local_messages_.load(std::memory_order_relaxed);
  s.delivered_messages = delivered_messages_.load(std::memory_order_relaxed);
  s.dropped_at_crashed =
      dropped_at_crashed_.load(std::memory_order_relaxed);
  s.spilled_messages = spilled_messages_.load(std::memory_order_relaxed);
  s.payloads_acquired = payloads_acquired_.load(std::memory_order_relaxed);
  return s;
}

void Runtime::replay_into(obs::InvariantChecker& chk) {
  // Merge the shards by global stamp. Stamps are unique (one atomic), so
  // the merged sequence is a total order; per-site subsequences keep their
  // local order because each shard was appended in stamp order.
  std::vector<const ObsEvent*> merged;
  size_t total = obs_extra_.size();
  for (const auto& shard : obs_shards_) total += shard.size();
  merged.reserve(total);
  for (const auto& shard : obs_shards_)
    for (const ObsEvent& e : shard) merged.push_back(&e);
  for (const ObsEvent& e : obs_extra_) merged.push_back(&e);
  std::sort(merged.begin(), merged.end(),
            [](const ObsEvent* a, const ObsEvent* b) {
              return a->stamp < b->stamp;
            });
  Time last = 0;
  for (const ObsEvent* e : merged) {
    // Guard against wall-clock reads racing the stamp acquisition across
    // threads: the checker only needs a non-decreasing clock.
    const Time at = std::max(e->at, last);
    last = at;
    switch (e->kind) {
      case ObsEvent::kSpanIssue:
        chk.on_span_issue(e->site, e->lock, e->span, at);
        break;
      case ObsEvent::kSpanEnter:
        chk.on_span_enter(e->site, e->lock, e->span, at);
        break;
      case ObsEvent::kSpanExit:
        chk.on_span_exit(e->site, e->lock, e->span, at);
        break;
      case ObsEvent::kSpanAbort:
        chk.on_span_abort(e->site, e->lock, e->span, at);
        break;
      case ObsEvent::kDeliver:
        chk.observe(e->m, e->lock, at);
        break;
      case ObsEvent::kCrash:
        chk.on_crash(e->site);
        break;
      default:
        DQME_CHECK_MSG(false, "unknown obs event kind");
    }
  }
  chk.finish(last);
}

}  // namespace dqme::rt
