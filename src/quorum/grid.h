// Maekawa-style grid quorums.
//
// Sites fill a rows x cols grid (cols = ceil(sqrt(N)), row-major, the last
// row possibly partial). Site i's quorum is its full row plus a
// *transversal* — one cell in every other row, preferring i's own column
// and substituting another cell of that row where the column has a hole or
// (under failures) a crash. Any two such quorums intersect: each contains a
// complete row, and the other's transversal hits that row. Size is
// rows + cols - 1 ~ 2*sqrt(N): the classic O(sqrt(N)) construction behind
// the paper's K = sqrt(N).
#pragma once

#include "quorum/quorum_system.h"

namespace dqme::quorum {

class GridQuorum final : public QuorumSystem {
 public:
  explicit GridQuorum(int n);

  int num_sites() const override { return n_; }
  std::string name() const override;
  Quorum quorum_for(SiteId id) const override;
  std::optional<Quorum> quorum_for_alive(
      SiteId id, const std::vector<bool>& alive) const override;
  bool available(const std::vector<bool>& alive) const override;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  // Kept for callers that size buffers off the classic square grid.
  int side() const { return cols_; }

 private:
  bool exists(int row, int col) const { return row * cols_ + col < n_; }
  SiteId site_at(int row, int col) const {
    return static_cast<SiteId>(row * cols_ + col);
  }
  // Builds "full row `r` + transversal preferring column `c`", restricted
  // to live sites when `alive` is given. Nullopt if the row is not fully
  // live or some row has no live cell.
  std::optional<Quorum> cross(int r, int c,
                              const std::vector<bool>* alive) const;

  int n_;
  int cols_;
  int rows_;
};

}  // namespace dqme::quorum
