#include "quorum/rst.h"

#include <sstream>

#include "common/check.h"

namespace dqme::quorum {

RstQuorum::RstQuorum(int n, int group_size)
    : n_(n), g_(group_size), m_(n / group_size), group_grid_(n / group_size) {
  DQME_CHECK_MSG(group_size >= 1 && n % group_size == 0,
                 "RST needs group_size | N (N=" << n << ", G=" << group_size
                                                << ")");
}

std::string RstQuorum::name() const {
  std::ostringstream os;
  os << "rst(G=" << g_ << ")";
  return os.str();
}

std::optional<Quorum> RstQuorum::group_majority(
    int grp, const std::vector<bool>* alive) const {
  const int need = g_ / 2 + 1;
  const SiteId base = static_cast<SiteId>(grp * g_);
  Quorum q;
  q.reserve(static_cast<size_t>(need));
  for (int k = 0; k < g_ && static_cast<int>(q.size()) < need; ++k) {
    SiteId s = base + k;
    if (alive == nullptr || (*alive)[static_cast<size_t>(s)]) q.push_back(s);
  }
  if (static_cast<int>(q.size()) < need) return std::nullopt;
  return q;
}

Quorum RstQuorum::quorum_for(SiteId id) const {
  DQME_CHECK(0 <= id && id < n_);
  Quorum q;
  for (SiteId grp : group_grid_.quorum_for(id / g_)) {
    auto maj = group_majority(grp, nullptr);
    DQME_CHECK(maj.has_value());
    q.insert(q.end(), maj->begin(), maj->end());
  }
  normalize(q);
  return q;
}

std::optional<Quorum> RstQuorum::quorum_for_alive(
    SiteId id, const std::vector<bool>& alive) const {
  DQME_CHECK(0 <= id && id < n_);
  DQME_CHECK(static_cast<int>(alive.size()) == n_);
  // A group is usable iff a majority of its members are live; then pick a
  // grid cross among usable groups.
  std::vector<bool> group_ok(static_cast<size_t>(m_));
  for (int grp = 0; grp < m_; ++grp)
    group_ok[static_cast<size_t>(grp)] =
        group_majority(grp, &alive).has_value();
  auto cross = group_grid_.quorum_for_alive(id / g_, group_ok);
  if (!cross) return std::nullopt;
  Quorum q;
  for (SiteId grp : *cross) {
    auto maj = group_majority(grp, &alive);
    DQME_CHECK(maj.has_value());
    q.insert(q.end(), maj->begin(), maj->end());
  }
  normalize(q);
  return q;
}

bool RstQuorum::available(const std::vector<bool>& alive) const {
  std::vector<bool> group_ok(static_cast<size_t>(m_));
  for (int grp = 0; grp < m_; ++grp)
    group_ok[static_cast<size_t>(grp)] =
        group_majority(grp, &alive).has_value();
  return group_grid_.available(group_ok);
}

}  // namespace dqme::quorum
