// Hierarchical quorum consensus (HQC) [4] (paper §6).
//
// Sites are the leaves of a complete ternary tree; a quorum is formed by
// recursively taking a majority (2 of 3) of subtrees at every level and all
// the way down to leaves. For N = 3^d the quorum size is 2^d = N^(log3 2)
// ~ N^0.63. (The paper's OCR prints N^0.43; see DESIGN.md D5 — E6 reports
// the measured size.)
#pragma once

#include "quorum/quorum_system.h"

namespace dqme::quorum {

class HqcQuorum final : public QuorumSystem {
 public:
  explicit HqcQuorum(int n);  // requires n = 3^d

  int num_sites() const override { return n_; }
  std::string name() const override;
  Quorum quorum_for(SiteId id) const override;
  std::optional<Quorum> quorum_for_alive(
      SiteId id, const std::vector<bool>& alive) const override;
  bool available(const std::vector<bool>& alive) const override;

  int levels() const { return d_; }

 private:
  // Builds a quorum over leaves [lo, lo+len) into `out`; returns false if
  // no 2-of-3 majority can be completed. `steer` rotates which two children
  // are preferred, spreading load across sites.
  bool build(int lo, int len, SiteId steer, const std::vector<bool>& alive,
             Quorum& out) const;

  int n_;
  int d_;
};

}  // namespace dqme::quorum
