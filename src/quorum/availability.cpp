#include "quorum/availability.h"

#include <cmath>

#include "common/check.h"

namespace dqme::quorum {

double exact_availability(const QuorumSystem& qs, double site_up_prob) {
  const int n = qs.num_sites();
  DQME_CHECK_MSG(n <= 24, "exact availability is exponential in N; N=" << n);
  DQME_CHECK(0.0 <= site_up_prob && site_up_prob <= 1.0);
  const double q = site_up_prob;
  double total = 0.0;
  std::vector<bool> alive(static_cast<size_t>(n));
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    int up = 0;
    for (int s = 0; s < n; ++s) {
      bool a = (mask >> s) & 1u;
      alive[static_cast<size_t>(s)] = a;
      up += a ? 1 : 0;
    }
    if (!qs.available(alive)) continue;
    total += std::pow(q, up) * std::pow(1.0 - q, n - up);
  }
  return total;
}

double mc_availability(const QuorumSystem& qs, double site_up_prob,
                       int samples, Rng& rng) {
  DQME_CHECK(samples > 0);
  const int n = qs.num_sites();
  std::vector<bool> alive(static_cast<size_t>(n));
  int ok = 0;
  for (int it = 0; it < samples; ++it) {
    for (int s = 0; s < n; ++s)
      alive[static_cast<size_t>(s)] = rng.bernoulli(site_up_prob);
    if (qs.available(alive)) ++ok;
  }
  return static_cast<double>(ok) / samples;
}

}  // namespace dqme::quorum
