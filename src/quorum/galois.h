// Small finite fields GF(q) for the projective-plane quorum construction.
//
// Supports every prime q (arithmetic mod q) and the prime powers up to 32
// (polynomial arithmetic over GF(p) modulo a fixed irreducible polynomial:
// 4, 8, 9, 16, 25, 27). Elements are integers 0..q-1, encoding polynomial
// coefficients base p. Operation tables are precomputed at construction —
// the fields are tiny and the quorum builder hits them O(N^2) times.
#pragma once

#include <vector>

#include "common/check.h"

namespace dqme::quorum {

// True if q = p^k for prime p with a field implementation available here.
bool is_supported_field_order(int q);

class GaloisField {
 public:
  explicit GaloisField(int q);  // requires is_supported_field_order(q)

  int order() const { return q_; }
  int add(int a, int b) const { return add_[idx(a, b)]; }
  int mul(int a, int b) const { return mul_[idx(a, b)]; }
  int neg(int a) const { return neg_[static_cast<size_t>(a)]; }
  // Multiplicative inverse; a != 0.
  int inv(int a) const {
    DQME_CHECK(a != 0);
    return inv_[static_cast<size_t>(a)];
  }

 private:
  size_t idx(int a, int b) const {
    DQME_CHECK(0 <= a && a < q_ && 0 <= b && b < q_);
    return static_cast<size_t>(a) * static_cast<size_t>(q_) +
           static_cast<size_t>(b);
  }

  int q_;
  std::vector<int> add_;
  std::vector<int> mul_;
  std::vector<int> neg_;
  std::vector<int> inv_;
};

}  // namespace dqme::quorum
