#include "quorum/grid.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace dqme::quorum {

GridQuorum::GridQuorum(int n) : n_(n) {
  DQME_CHECK(n >= 1);
  cols_ = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  rows_ = (n + cols_ - 1) / cols_;
}

std::string GridQuorum::name() const {
  std::ostringstream os;
  os << "grid(" << cols_ << "x" << cols_ << ")";
  return os.str();
}

std::optional<Quorum> GridQuorum::cross(
    int r, int c, const std::vector<bool>* alive) const {
  auto live = [&](int row, int col) {
    return exists(row, col) &&
           (alive == nullptr ||
            (*alive)[static_cast<size_t>(site_at(row, col))]);
  };
  Quorum q;
  q.reserve(static_cast<size_t>(cols_ + rows_));
  // The full row r (all its existing cells must be live).
  for (int col = 0; col < cols_; ++col) {
    if (!exists(r, col)) break;  // only the last row is partial
    if (!live(r, col)) return std::nullopt;
    q.push_back(site_at(r, col));
  }
  // A transversal: one live cell in every other row, preferring column c.
  for (int row = 0; row < rows_; ++row) {
    if (row == r) continue;
    if (live(row, c)) {
      q.push_back(site_at(row, c));
      continue;
    }
    bool found = false;
    for (int col = 0; col < cols_ && !found; ++col)
      if (live(row, col)) {
        q.push_back(site_at(row, col));
        found = true;
      }
    if (!found) return std::nullopt;  // a whole row is dead
  }
  normalize(q);
  return q;
}

Quorum GridQuorum::quorum_for(SiteId id) const {
  DQME_CHECK(0 <= id && id < n_);
  auto q = cross(id / cols_, id % cols_, nullptr);
  DQME_CHECK(q.has_value());
  return *q;
}

std::optional<Quorum> GridQuorum::quorum_for_alive(
    SiteId id, const std::vector<bool>& alive) const {
  DQME_CHECK(0 <= id && id < n_);
  DQME_CHECK(static_cast<int>(alive.size()) == n_);
  const int own_r = id / cols_, own_c = id % cols_;
  // Any fully-live row works as the base row; prefer the site's own.
  for (int d = 0; d < rows_; ++d) {
    if (auto q = cross((own_r + d) % rows_, own_c, &alive)) return q;
  }
  return std::nullopt;
}

bool GridQuorum::available(const std::vector<bool>& alive) const {
  return quorum_for_alive(0, alive).has_value();
}

}  // namespace dqme::quorum
