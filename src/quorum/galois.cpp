#include "quorum/galois.h"

namespace dqme::quorum {

namespace {

bool is_prime(int q) {
  if (q < 2) return false;
  for (int d = 2; d * d <= q; ++d)
    if (q % d == 0) return false;
  return true;
}

// (p, k, irreducible polynomial of degree k with coefficients base p,
// including the leading 1). x^2+x+1 over GF(2) encodes as 1*4 + 1*2 + 1.
struct PrimePower {
  int q, p, k, poly;
};

constexpr PrimePower kPrimePowers[] = {
    {4, 2, 2, 0b111},        // x^2 + x + 1
    {8, 2, 3, 0b1011},       // x^3 + x + 1
    {9, 3, 2, 9 + 0 + 1},    // x^2 + 1          (digits base 3: 1,0,1)
    {16, 2, 4, 0b10011},     // x^4 + x + 1
    {25, 5, 2, 25 + 0 + 2},  // x^2 + 2          (digits base 5: 1,0,2)
    {27, 3, 3, 27 + 0 + 2 * 3 + 1},  // x^3 + 2x + 1 (base 3: 1,0,2,1)
};

const PrimePower* find_prime_power(int q) {
  for (const PrimePower& pp : kPrimePowers)
    if (pp.q == q) return &pp;
  return nullptr;
}

// Polynomial coefficient vectors base p, least-significant first.
std::vector<int> digits(int value, int p, int len) {
  std::vector<int> d(static_cast<size_t>(len), 0);
  for (int i = 0; i < len && value > 0; ++i) {
    d[static_cast<size_t>(i)] = value % p;
    value /= p;
  }
  return d;
}

int undigits(const std::vector<int>& d, int p) {
  int v = 0;
  for (size_t i = d.size(); i > 0; --i) v = v * p + d[i - 1];
  return v;
}

// (a * b) mod poly over GF(p), schoolbook — fields here are tiny.
int poly_mul_mod(int a, int b, const PrimePower& pp) {
  std::vector<int> da = digits(a, pp.p, pp.k);
  std::vector<int> db = digits(b, pp.p, pp.k);
  std::vector<int> prod(static_cast<size_t>(2 * pp.k - 1), 0);
  for (int i = 0; i < pp.k; ++i)
    for (int j = 0; j < pp.k; ++j)
      prod[static_cast<size_t>(i + j)] =
          (prod[static_cast<size_t>(i + j)] +
           da[static_cast<size_t>(i)] * db[static_cast<size_t>(j)]) %
          pp.p;
  // Reduce modulo the monic irreducible polynomial.
  std::vector<int> mod = digits(pp.poly, pp.p, pp.k + 1);
  for (int deg = 2 * pp.k - 2; deg >= pp.k; --deg) {
    const int coeff = prod[static_cast<size_t>(deg)];
    if (coeff == 0) continue;
    for (int i = 0; i <= pp.k; ++i) {
      int& slot = prod[static_cast<size_t>(deg - pp.k + i)];
      slot = ((slot - coeff * mod[static_cast<size_t>(i)]) % pp.p + pp.p) %
             pp.p;
    }
  }
  prod.resize(static_cast<size_t>(pp.k));
  return undigits(prod, pp.p);
}

int poly_add(int a, int b, const PrimePower& pp) {
  std::vector<int> da = digits(a, pp.p, pp.k);
  std::vector<int> db = digits(b, pp.p, pp.k);
  for (int i = 0; i < pp.k; ++i)
    da[static_cast<size_t>(i)] =
        (da[static_cast<size_t>(i)] + db[static_cast<size_t>(i)]) % pp.p;
  return undigits(da, pp.p);
}

}  // namespace

bool is_supported_field_order(int q) {
  return is_prime(q) || find_prime_power(q) != nullptr;
}

GaloisField::GaloisField(int q) : q_(q) {
  DQME_CHECK_MSG(is_supported_field_order(q),
                 "GF(" << q << ") not supported (primes, and prime powers "
                       << "4/8/9/16/25/27)");
  const size_t qq = static_cast<size_t>(q) * static_cast<size_t>(q);
  add_.resize(qq);
  mul_.resize(qq);
  neg_.resize(static_cast<size_t>(q));
  inv_.assign(static_cast<size_t>(q), 0);

  const PrimePower* pp = find_prime_power(q);
  for (int a = 0; a < q; ++a) {
    for (int b = 0; b < q; ++b) {
      add_[idx(a, b)] = pp ? poly_add(a, b, *pp) : (a + b) % q;
      mul_[idx(a, b)] = pp ? poly_mul_mod(a, b, *pp) : (a * b) % q;
    }
  }
  for (int a = 0; a < q; ++a) {
    for (int b = 0; b < q; ++b) {
      if (add_[idx(a, b)] == 0) neg_[static_cast<size_t>(a)] = b;
      if (a != 0 && mul_[idx(a, b)] == 1) inv_[static_cast<size_t>(a)] = b;
    }
    DQME_CHECK_MSG(a == 0 || mul_[idx(a, inv_[static_cast<size_t>(a)])] == 1,
                   "GF(" << q << "): no inverse for " << a
                         << " — polynomial not irreducible?");
  }
}

}  // namespace dqme::quorum
