// String-keyed construction of quorum systems, used by the experiment
// harness and examples: "grid", "fpp", "tree", "majority", "hqc",
// "gridset:G", "rst:G", "singleton", "all".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "quorum/quorum_system.h"

namespace dqme::quorum {

// Throws CheckError if the kind is unknown or N is incompatible with the
// construction (e.g. "tree" with N != 2^k - 1).
std::unique_ptr<QuorumSystem> make_quorum_system(const std::string& kind,
                                                 int n);

// The kinds make_quorum_system accepts (with default parameters).
std::vector<std::string> known_quorum_kinds();

}  // namespace dqme::quorum
