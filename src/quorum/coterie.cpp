#include "quorum/coterie.h"

#include <algorithm>
#include <sstream>

namespace dqme::quorum {

bool is_valid_quorum(const Quorum& q, int n) {
  if (q.empty()) return false;
  for (size_t i = 0; i < q.size(); ++i) {
    if (q[i] < 0 || q[i] >= n) return false;
    if (i > 0 && q[i] <= q[i - 1]) return false;
  }
  return true;
}

bool intersects(const Quorum& a, const Quorum& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) ++i; else ++j;
  }
  return false;
}

bool is_subset(const Quorum& a, const Quorum& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

void normalize(Quorum& q) {
  std::sort(q.begin(), q.end());
  q.erase(std::unique(q.begin(), q.end()), q.end());
}

ValidationReport validate_coterie(const Coterie& c, int n) {
  ValidationReport r;
  for (size_t i = 0; i < c.size(); ++i) {
    if (!is_valid_quorum(c[i], n)) {
      r.well_formed = false;
      std::ostringstream os;
      os << "quorum " << i << " is malformed";
      r.detail = os.str();
      return r;
    }
  }
  for (size_t i = 0; i < c.size() && (r.intersection || r.minimality); ++i) {
    for (size_t j = i + 1; j < c.size(); ++j) {
      if (r.intersection && !intersects(c[i], c[j])) {
        r.intersection = false;
        std::ostringstream os;
        os << "quorums " << i << " and " << j << " are disjoint";
        r.detail = os.str();
      }
      if (r.minimality &&
          (is_subset(c[i], c[j]) || is_subset(c[j], c[i]))) {
        r.minimality = false;
        if (r.detail.empty()) {
          std::ostringstream os;
          os << "quorums " << i << " and " << j << " are nested";
          r.detail = os.str();
        }
      }
    }
  }
  return r;
}

Coterie dedup(Coterie c) {
  for (Quorum& q : c) normalize(q);
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  return c;
}

}  // namespace dqme::quorum
