// Grid-set quorums [2] (paper §6).
//
// Two levels: a *majority* of groups at the upper level (for resiliency),
// and a Maekawa-style *grid* quorum inside each selected group (for low
// message cost). N sites are split into N/G groups of size G. Two quorums
// always share a group (majorities intersect) and, inside that group, their
// grid crosses intersect. Tolerates any site failure pattern that leaves a
// majority of groups with a live grid cross — no recovery scheme needed for
// a single site failure.
#pragma once

#include "quorum/grid.h"
#include "quorum/quorum_system.h"

namespace dqme::quorum {

class GridSetQuorum final : public QuorumSystem {
 public:
  GridSetQuorum(int n, int group_size);  // requires group_size | n

  int num_sites() const override { return n_; }
  std::string name() const override;
  Quorum quorum_for(SiteId id) const override;
  std::optional<Quorum> quorum_for_alive(
      SiteId id, const std::vector<bool>& alive) const override;
  bool available(const std::vector<bool>& alive) const override;

  int groups() const { return m_; }
  int group_size() const { return g_; }

 private:
  // Grid cross inside group `grp`, anchored at member `anchor`, restricted
  // to alive sites; nullopt if the group has no live cross.
  std::optional<Quorum> group_cross(int grp, int anchor,
                                    const std::vector<bool>* alive) const;

  int n_;
  int g_;  // group size G
  int m_;  // number of groups N/G
  GridQuorum inner_;  // grid geometry over one group (indices 0..G-1)
};

}  // namespace dqme::quorum
