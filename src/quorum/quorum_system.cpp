#include "quorum/quorum_system.h"

#include <algorithm>

#include "common/check.h"

namespace dqme::quorum {

namespace {
bool all_alive(const Quorum& q, const std::vector<bool>& alive) {
  return std::all_of(q.begin(), q.end(), [&](SiteId s) {
    return alive[static_cast<size_t>(s)];
  });
}
}  // namespace

std::optional<Quorum> QuorumSystem::quorum_for_alive(
    SiteId id, const std::vector<bool>& alive) const {
  DQME_CHECK(static_cast<int>(alive.size()) == num_sites());
  // Default strategy: fall back on the base quorums of other sites. This is
  // safe for any construction (all candidates come from one coterie) but
  // weaker than construction-specific substitution — tree/majority/grid-set
  // override it.
  Quorum own = quorum_for(id);
  if (all_alive(own, alive)) return own;
  for (SiteId s = 0; s < num_sites(); ++s) {
    if (s == id) continue;
    Quorum q = quorum_for(s);
    if (all_alive(q, alive)) return q;
  }
  return std::nullopt;
}

bool QuorumSystem::available(const std::vector<bool>& alive) const {
  for (SiteId s = 0; s < num_sites(); ++s)
    if (all_alive(quorum_for(s), alive)) return true;
  return false;
}

Coterie QuorumSystem::base_coterie() const {
  Coterie c;
  c.reserve(static_cast<size_t>(num_sites()));
  for (SiteId s = 0; s < num_sites(); ++s) c.push_back(quorum_for(s));
  return dedup(std::move(c));
}

double QuorumSystem::mean_quorum_size() const {
  double total = 0;
  for (SiteId s = 0; s < num_sites(); ++s)
    total += static_cast<double>(quorum_for(s).size());
  return total / num_sites();
}

int QuorumSystem::max_quorum_size() const {
  size_t m = 0;
  for (SiteId s = 0; s < num_sites(); ++s)
    m = std::max(m, quorum_for(s).size());
  return static_cast<int>(m);
}

}  // namespace dqme::quorum
