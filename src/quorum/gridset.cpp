#include "quorum/gridset.h"

#include <sstream>

#include "common/check.h"

namespace dqme::quorum {

GridSetQuorum::GridSetQuorum(int n, int group_size)
    : n_(n), g_(group_size), m_(n / group_size), inner_(group_size) {
  DQME_CHECK_MSG(group_size >= 1 && n % group_size == 0,
                 "grid-set needs group_size | N (N=" << n << ", G="
                                                     << group_size << ")");
}

std::string GridSetQuorum::name() const {
  std::ostringstream os;
  os << "gridset(G=" << g_ << ")";
  return os.str();
}

std::optional<Quorum> GridSetQuorum::group_cross(
    int grp, int anchor, const std::vector<bool>* alive) const {
  // Map the inner grid's member indices (0..G-1) onto the group's sites.
  const SiteId base = static_cast<SiteId>(grp * g_);
  std::vector<bool> member_alive(static_cast<size_t>(g_), true);
  if (alive != nullptr)
    for (int k = 0; k < g_; ++k)
      member_alive[static_cast<size_t>(k)] =
          (*alive)[static_cast<size_t>(base + k)];
  auto cross = inner_.quorum_for_alive(anchor, member_alive);
  if (!cross) return std::nullopt;
  Quorum q;
  q.reserve(cross->size());
  for (SiteId member : *cross) q.push_back(base + member);
  return q;
}

Quorum GridSetQuorum::quorum_for(SiteId id) const {
  DQME_CHECK(0 <= id && id < n_);
  Quorum q;
  const int own_grp = id / g_;
  const int need = m_ / 2 + 1;  // majority of groups
  for (int k = 0; k < need; ++k) {
    const int grp = (own_grp + k) % m_;
    auto cross = group_cross(grp, id % g_, nullptr);
    DQME_CHECK(cross.has_value());
    q.insert(q.end(), cross->begin(), cross->end());
  }
  normalize(q);
  return q;
}

std::optional<Quorum> GridSetQuorum::quorum_for_alive(
    SiteId id, const std::vector<bool>& alive) const {
  DQME_CHECK(0 <= id && id < n_);
  DQME_CHECK(static_cast<int>(alive.size()) == n_);
  Quorum q;
  const int own_grp = id / g_;
  const int need = m_ / 2 + 1;
  int got = 0;
  for (int k = 0; k < m_ && got < need; ++k) {
    const int grp = (own_grp + k) % m_;
    if (auto cross = group_cross(grp, id % g_, &alive)) {
      q.insert(q.end(), cross->begin(), cross->end());
      ++got;
    }
  }
  if (got < need) return std::nullopt;
  normalize(q);
  return q;
}

bool GridSetQuorum::available(const std::vector<bool>& alive) const {
  const int need = m_ / 2 + 1;
  int got = 0;
  for (int grp = 0; grp < m_ && got < need; ++grp)
    if (group_cross(grp, 0, &alive)) ++got;
  return got >= need;
}

}  // namespace dqme::quorum
