#include "quorum/fpp.h"

#include <array>
#include <sstream>

#include "common/check.h"
#include "quorum/galois.h"

namespace dqme::quorum {

namespace {

// Homogeneous coordinates over GF(q), normalized so the first non-zero
// coordinate is 1. Exactly q^2 + q + 1 of these exist.
using Triple = std::array<int, 3>;

std::vector<Triple> projective_points(int q) {
  std::vector<Triple> pts;
  pts.reserve(static_cast<size_t>(q) * q + q + 1);
  // (1, y, z), (0, 1, z), (0, 0, 1) — already normalized.
  for (int y = 0; y < q; ++y)
    for (int z = 0; z < q; ++z) pts.push_back({1, y, z});
  for (int z = 0; z < q; ++z) pts.push_back({0, 1, z});
  pts.push_back({0, 0, 1});
  return pts;
}

}  // namespace

int fpp_order_for(int n) {
  for (int q = 2; q * q + q + 1 <= n; ++q)
    if (q * q + q + 1 == n && is_supported_field_order(q)) return q;
  return -1;
}

FppQuorum::FppQuorum(int n) : n_(n), q_(fpp_order_for(n)) {
  DQME_CHECK_MSG(q_ > 0,
                 "N=" << n << " is not q^2+q+1 for a supported prime power "
                         "q; use grid quorums for general N");
  const GaloisField gf(q_);
  const std::vector<Triple> pts = projective_points(q_);
  DQME_CHECK(static_cast<int>(pts.size()) == n_);
  lines_.resize(static_cast<size_t>(n_));
  // Line i = all points orthogonal to triple i (self-dual numbering).
  for (int i = 0; i < n_; ++i) {
    Quorum& line = lines_[static_cast<size_t>(i)];
    for (int p = 0; p < n_; ++p) {
      const Triple& a = pts[static_cast<size_t>(i)];
      const Triple& b = pts[static_cast<size_t>(p)];
      const int dot = gf.add(gf.mul(a[0], b[0]),
                             gf.add(gf.mul(a[1], b[1]), gf.mul(a[2], b[2])));
      if (dot == 0) line.push_back(p);
    }
    DQME_CHECK(static_cast<int>(line.size()) == q_ + 1);
  }
}

std::string FppQuorum::name() const {
  std::ostringstream os;
  os << "fpp(q=" << q_ << ")";
  return os.str();
}

Quorum FppQuorum::quorum_for(SiteId id) const {
  DQME_CHECK(0 <= id && id < n_);
  return lines_[static_cast<size_t>(id)];
}

}  // namespace dqme::quorum
