// Coterie primitives (paper §2).
//
// A quorum is a sorted set of distinct sites; a coterie is a set of quorums
// satisfying the Intersection property (any two quorums share a site) and
// the Minimality property (no quorum contains another). Intersection is
// what makes quorum-based mutual exclusion safe; minimality is an
// efficiency concern only (paper §2).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace dqme::quorum {

using Quorum = std::vector<SiteId>;  // sorted, unique
using Coterie = std::vector<Quorum>;

// True if `q` is sorted, duplicate-free, and within [0, n).
bool is_valid_quorum(const Quorum& q, int n);

// True if the sorted sets `a` and `b` share at least one site.
bool intersects(const Quorum& a, const Quorum& b);

// True if sorted set `a` is a subset of sorted set `b`.
bool is_subset(const Quorum& a, const Quorum& b);

// Sorts and deduplicates in place — constructions use this to normalize.
void normalize(Quorum& q);

struct ValidationReport {
  bool well_formed = true;    // each quorum valid and non-empty
  bool intersection = true;   // pairwise intersection holds
  bool minimality = true;     // no quorum contains another
  std::string detail;         // first violation, for diagnostics

  bool ok() const { return well_formed && intersection; }
  bool strictly_ok() const { return ok() && minimality; }
};

// Checks the coterie conditions of paper §2 over all pairs.
ValidationReport validate_coterie(const Coterie& c, int n);

// Removes duplicate quorums (after normalization).
Coterie dedup(Coterie c);

}  // namespace dqme::quorum
