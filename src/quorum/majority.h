// Majority voting quorums [18] (paper §6): any floor(N/2)+1 sites.
// Maximally resilient (available while any majority survives) but Theta(N)
// sized — the high-message-cost end of the trade-off the paper discusses.
#pragma once

#include "quorum/quorum_system.h"

namespace dqme::quorum {

class MajorityQuorum final : public QuorumSystem {
 public:
  explicit MajorityQuorum(int n);

  int num_sites() const override { return n_; }
  std::string name() const override { return "majority"; }
  Quorum quorum_for(SiteId id) const override;
  std::optional<Quorum> quorum_for_alive(
      SiteId id, const std::vector<bool>& alive) const override;
  bool available(const std::vector<bool>& alive) const override;

  int majority_size() const { return m_; }

 private:
  int n_;
  int m_;  // floor(n/2) + 1
};

}  // namespace dqme::quorum
