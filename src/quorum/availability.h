// Availability analysis for quorum systems (paper §6, experiment E7):
// the probability that a quorum can still be formed when each site is
// independently up with probability 1 - p.
#pragma once

#include "common/rng.h"
#include "quorum/quorum_system.h"

namespace dqme::quorum {

// Exact availability by enumerating all 2^N failure patterns. Only for
// small N (guarded at N <= 24).
double exact_availability(const QuorumSystem& qs, double site_up_prob);

// Monte-Carlo availability estimate over `samples` iid failure patterns.
double mc_availability(const QuorumSystem& qs, double site_up_prob,
                       int samples, Rng& rng);

}  // namespace dqme::quorum
