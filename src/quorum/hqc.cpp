#include "quorum/hqc.h"

#include <array>
#include <sstream>

#include "common/check.h"

namespace dqme::quorum {

HqcQuorum::HqcQuorum(int n) : n_(n) {
  d_ = 0;
  int m = 1;
  while (m < n) {
    m *= 3;
    ++d_;
  }
  DQME_CHECK_MSG(m == n, "HQC requires N = 3^d, got N=" << n);
}

std::string HqcQuorum::name() const {
  std::ostringstream os;
  os << "hqc(3^" << d_ << ")";
  return os.str();
}

bool HqcQuorum::build(int lo, int len, SiteId steer,
                      const std::vector<bool>& alive, Quorum& out) const {
  if (len == 1) {
    if (!alive[static_cast<size_t>(lo)]) return false;
    out.push_back(lo);
    return true;
  }
  const int cl = len / 3;
  // Rotate the preference order by one ternary digit of `steer` per level,
  // so different sites prefer different 2-of-3 majorities.
  const int rot = steer % 3;
  std::array<int, 3> order = {rot, (rot + 1) % 3, (rot + 2) % 3};
  int got = 0;
  const size_t mark = out.size();
  for (int idx : order) {
    if (got == 2) break;
    const size_t sub_mark = out.size();
    if (build(lo + idx * cl, cl, steer / 3, alive, out))
      ++got;
    else
      out.resize(sub_mark);
  }
  if (got == 2) return true;
  out.resize(mark);
  return false;
}

Quorum HqcQuorum::quorum_for(SiteId id) const {
  std::vector<bool> all(static_cast<size_t>(n_), true);
  auto q = quorum_for_alive(id, all);
  DQME_CHECK(q.has_value());
  return *q;
}

std::optional<Quorum> HqcQuorum::quorum_for_alive(
    SiteId id, const std::vector<bool>& alive) const {
  DQME_CHECK(0 <= id && id < n_);
  DQME_CHECK(static_cast<int>(alive.size()) == n_);
  Quorum out;
  if (!build(0, n_, id, alive, out)) return std::nullopt;
  normalize(out);
  return out;
}

bool HqcQuorum::available(const std::vector<bool>& alive) const {
  Quorum out;
  return build(0, n_, 0, alive, out);
}

}  // namespace dqme::quorum
