#include "quorum/majority.h"

#include "common/check.h"

namespace dqme::quorum {

MajorityQuorum::MajorityQuorum(int n) : n_(n), m_(n / 2 + 1) {
  DQME_CHECK(n >= 1);
}

Quorum MajorityQuorum::quorum_for(SiteId id) const {
  DQME_CHECK(0 <= id && id < n_);
  // A window of m_ consecutive sites starting at the caller, so load is
  // spread evenly instead of always hammering sites 0..m-1.
  Quorum q;
  q.reserve(static_cast<size_t>(m_));
  for (int k = 0; k < m_; ++k) q.push_back((id + k) % n_);
  normalize(q);
  return q;
}

std::optional<Quorum> MajorityQuorum::quorum_for_alive(
    SiteId id, const std::vector<bool>& alive) const {
  DQME_CHECK(0 <= id && id < n_);
  Quorum q;
  q.reserve(static_cast<size_t>(m_));
  // Any m_ live sites form a majority; walk from the caller for locality.
  for (int k = 0; k < n_ && static_cast<int>(q.size()) < m_; ++k) {
    SiteId s = (id + k) % n_;
    if (alive[static_cast<size_t>(s)]) q.push_back(s);
  }
  if (static_cast<int>(q.size()) < m_) return std::nullopt;
  normalize(q);
  return q;
}

bool MajorityQuorum::available(const std::vector<bool>& alive) const {
  int up = 0;
  for (bool a : alive) up += a ? 1 : 0;
  return up >= m_;
}

}  // namespace dqme::quorum
