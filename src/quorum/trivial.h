// Degenerate quorum systems, useful as baselines and in tests:
//   * SingletonQuorum — every quorum is {0}: a central coordinator.
//   * AllQuorum — every quorum is all N sites: unanimous consent, the
//     quorum-system view of Lamport/Ricart-Agrawala style permission sets.
#pragma once

#include "quorum/quorum_system.h"

namespace dqme::quorum {

class SingletonQuorum final : public QuorumSystem {
 public:
  explicit SingletonQuorum(int n);

  int num_sites() const override { return n_; }
  std::string name() const override { return "singleton"; }
  Quorum quorum_for(SiteId id) const override;
  bool available(const std::vector<bool>& alive) const override;

 private:
  int n_;
};

class AllQuorum final : public QuorumSystem {
 public:
  explicit AllQuorum(int n);

  int num_sites() const override { return n_; }
  std::string name() const override { return "all"; }
  Quorum quorum_for(SiteId id) const override;
  bool available(const std::vector<bool>& alive) const override;

 private:
  int n_;
};

}  // namespace dqme::quorum
