// Finite-projective-plane quorums (Maekawa's original construction).
//
// For a prime power q, the projective plane PG(2,q) has N = q^2 + q + 1
// points and equally many lines; every line carries q + 1 points and any
// two lines meet in exactly one point. Identifying sites with both points
// and lines gives quorums of size q + 1 ~ sqrt(N) with pairwise
// intersection exactly one — the optimal symmetric construction Maekawa's
// paper is built on.
//
// Supported N: any prime q, plus the prime powers 4/8/9/16/25/27 via
// GF(p^k) arithmetic (quorum/galois.h) — N in {7, 13, 21, 31, 57, 73, 91,
// 133, 183, 273, 307, 651, 757, ...}. The grid covers general N.
#pragma once

#include "quorum/quorum_system.h"

namespace dqme::quorum {

// Returns q if n == q^2+q+1 for a supported prime power q, else -1.
int fpp_order_for(int n);

class FppQuorum final : public QuorumSystem {
 public:
  explicit FppQuorum(int n);  // requires fpp_order_for(n) > 0

  int num_sites() const override { return n_; }
  std::string name() const override;
  Quorum quorum_for(SiteId id) const override;

  int order() const { return q_; }

 private:
  int n_;
  int q_;
  std::vector<Quorum> lines_;  // lines_[i] = sorted points on line i
};

}  // namespace dqme::quorum
