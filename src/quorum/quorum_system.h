// Quorum-construction interface.
//
// The paper's algorithm (and Maekawa's) is parameterized by the quorum
// construction: "Our scheme is independent of the quorum being used" (§1).
// A QuorumSystem maps each site to its req_set and — for the §6 fault-
// tolerance layer — can re-form quorums around failed sites when the
// construction supports it (tree, majority, grid-set, RST).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "quorum/coterie.h"

namespace dqme::quorum {

class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  virtual int num_sites() const = 0;
  virtual std::string name() const = 0;

  // The req_set site `id` uses when all sites are up. Sorted and non-empty.
  virtual Quorum quorum_for(SiteId id) const = 0;

  // A quorum for `id` drawn only from sites with alive[s] == true, or
  // nullopt if the construction cannot form one under this failure pattern.
  // Safety requirement (tested): any two quorums this method can return,
  // under any two alive views, intersect.
  virtual std::optional<Quorum> quorum_for_alive(
      SiteId id, const std::vector<bool>& alive) const;

  // Whether some quorum can be formed from the alive set. Drives the
  // availability analysis of E7.
  virtual bool available(const std::vector<bool>& alive) const;

  // The distinct quorums sites use when all are up (for validation; this is
  // the coterie in use, not the set of all quorums the construction could
  // ever produce).
  Coterie base_coterie() const;

  // Mean / max base quorum size (the paper's K).
  double mean_quorum_size() const;
  int max_quorum_size() const;
};

}  // namespace dqme::quorum
