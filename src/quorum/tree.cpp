#include "quorum/tree.h"

#include <sstream>

#include "common/check.h"

namespace dqme::quorum {

TreeQuorum::TreeQuorum(int n) : n_(n) {
  DQME_CHECK_MSG(n >= 1 && ((n + 1) & n) == 0,
                 "tree quorums require N = 2^k - 1, got N=" << n);
  depth_ = 0;
  for (int m = n; m > 0; m >>= 1) ++depth_;
}

std::string TreeQuorum::name() const {
  std::ostringstream os;
  os << "tree(depth=" << depth_ << ")";
  return os.str();
}

bool TreeQuorum::build(int v, int level, SiteId steer,
                       const std::vector<bool>& alive, Quorum& out) const {
  const int left = 2 * v + 1;
  const int right = 2 * v + 2;
  const bool leaf = left >= n_;
  if (alive[static_cast<size_t>(v)]) {
    out.push_back(v);
    if (leaf) return true;
    const size_t mark = out.size();
    const int first = ((steer >> level) & 1) ? right : left;
    const int second = first == left ? right : left;
    if (build(first, level + 1, steer, alive, out)) return true;
    out.resize(mark);
    if (build(second, level + 1, steer, alive, out)) return true;
    // Both child paths failed; the subtree cannot complete a path. Undo.
    out.resize(mark);
    out.pop_back();
    return false;
  }
  // Substitution rule: a dead node is replaced by a complete path from each
  // of its children. A dead leaf cannot be substituted.
  if (leaf) return false;
  const size_t mark = out.size();
  if (build(left, level + 1, steer, alive, out) &&
      build(right, level + 1, steer, alive, out))
    return true;
  out.resize(mark);
  return false;
}

Quorum TreeQuorum::quorum_for(SiteId id) const {
  std::vector<bool> all(static_cast<size_t>(n_), true);
  auto q = quorum_for_alive(id, all);
  DQME_CHECK(q.has_value());
  return *q;
}

std::optional<Quorum> TreeQuorum::quorum_for_alive(
    SiteId id, const std::vector<bool>& alive) const {
  DQME_CHECK(0 <= id && id < n_);
  DQME_CHECK(static_cast<int>(alive.size()) == n_);
  Quorum out;
  if (!build(/*v=*/0, /*level=*/0, id, alive, out)) return std::nullopt;
  normalize(out);
  return out;
}

bool TreeQuorum::available(const std::vector<bool>& alive) const {
  Quorum out;
  return build(0, 0, /*steer=*/0, alive, out);
}

}  // namespace dqme::quorum
