// Rangarajan-Setia-Tripathi quorums [11] (paper §6) — the dual of grid-set:
// a Maekawa-style grid over the *groups* at the upper level and a *majority*
// inside each selected group. Quorum size ~ (G+1)/2 * 2*sqrt(N/G). A single
// site failure is masked by the in-group majority without any recovery.
#pragma once

#include "quorum/grid.h"
#include "quorum/quorum_system.h"

namespace dqme::quorum {

class RstQuorum final : public QuorumSystem {
 public:
  RstQuorum(int n, int group_size);  // requires group_size | n

  int num_sites() const override { return n_; }
  std::string name() const override;
  Quorum quorum_for(SiteId id) const override;
  std::optional<Quorum> quorum_for_alive(
      SiteId id, const std::vector<bool>& alive) const override;
  bool available(const std::vector<bool>& alive) const override;

  int groups() const { return m_; }
  int group_size() const { return g_; }

 private:
  // Majority of group `grp`'s members (preferring low ids, or live sites
  // when `alive` is given); nullopt if fewer than a majority are live.
  std::optional<Quorum> group_majority(int grp,
                                       const std::vector<bool>* alive) const;

  int n_;
  int g_;
  int m_;
  GridQuorum group_grid_;  // grid geometry over group indices 0..m-1
};

}  // namespace dqme::quorum
