#include "quorum/trivial.h"

#include <numeric>

#include "common/check.h"

namespace dqme::quorum {

SingletonQuorum::SingletonQuorum(int n) : n_(n) { DQME_CHECK(n >= 1); }

Quorum SingletonQuorum::quorum_for(SiteId id) const {
  DQME_CHECK(0 <= id && id < n_);
  return {0};
}

bool SingletonQuorum::available(const std::vector<bool>& alive) const {
  return alive[0];
}

AllQuorum::AllQuorum(int n) : n_(n) { DQME_CHECK(n >= 1); }

Quorum AllQuorum::quorum_for(SiteId id) const {
  DQME_CHECK(0 <= id && id < n_);
  Quorum q(static_cast<size_t>(n_));
  std::iota(q.begin(), q.end(), 0);
  return q;
}

bool AllQuorum::available(const std::vector<bool>& alive) const {
  for (bool a : alive)
    if (!a) return false;
  return true;
}

}  // namespace dqme::quorum
