// Agrawal-El Abbadi tree quorums [1] (paper §6).
//
// Sites form a complete binary tree (heap layout; N = 2^k - 1). A quorum is
// any root-to-leaf path — size log2(N+1) — and when a site on the path is
// down it is substituted by two paths, one from each of its children,
// degrading gracefully toward (N+1)/2 sites under heavy failure. Any two
// quorums produced this way intersect, under any two failure views, which
// is what makes the §6 recovery protocol safe.
#pragma once

#include "quorum/quorum_system.h"

namespace dqme::quorum {

class TreeQuorum final : public QuorumSystem {
 public:
  explicit TreeQuorum(int n);  // requires n = 2^k - 1

  int num_sites() const override { return n_; }
  std::string name() const override;
  Quorum quorum_for(SiteId id) const override;
  std::optional<Quorum> quorum_for_alive(
      SiteId id, const std::vector<bool>& alive) const override;
  bool available(const std::vector<bool>& alive) const override;

  int depth() const { return depth_; }

 private:
  // Builds a quorum for the subtree rooted at `v`, preferring the child
  // selected by `steer`'s bits (one bit per level, for load spreading).
  // Returns false if the subtree cannot contribute.
  bool build(int v, int level, SiteId steer, const std::vector<bool>& alive,
             Quorum& out) const;

  int n_;
  int depth_;  // number of levels; root is level 0
};

}  // namespace dqme::quorum
