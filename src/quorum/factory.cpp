#include "quorum/factory.h"

#include <cmath>

#include "common/check.h"
#include "quorum/fpp.h"
#include "quorum/grid.h"
#include "quorum/gridset.h"
#include "quorum/hqc.h"
#include "quorum/majority.h"
#include "quorum/rst.h"
#include "quorum/tree.h"
#include "quorum/trivial.h"

namespace dqme::quorum {

namespace {

// Parses "name" or "name:param"; returns param or `fallback`.
int parse_param(const std::string& kind, int fallback) {
  auto pos = kind.find(':');
  if (pos == std::string::npos) return fallback;
  return std::stoi(kind.substr(pos + 1));
}

std::string base_name(const std::string& kind) {
  return kind.substr(0, kind.find(':'));
}

// Default group size ~ sqrt(N), the balance point for two-level schemes.
int default_group(int n) {
  int g = static_cast<int>(std::round(std::sqrt(static_cast<double>(n))));
  while (g > 1 && n % g != 0) --g;
  return g < 1 ? 1 : g;
}

}  // namespace

std::unique_ptr<QuorumSystem> make_quorum_system(const std::string& kind,
                                                 int n) {
  const std::string name = base_name(kind);
  if (name == "grid") return std::make_unique<GridQuorum>(n);
  if (name == "fpp") return std::make_unique<FppQuorum>(n);
  if (name == "tree") return std::make_unique<TreeQuorum>(n);
  if (name == "majority") return std::make_unique<MajorityQuorum>(n);
  if (name == "hqc") return std::make_unique<HqcQuorum>(n);
  if (name == "gridset")
    return std::make_unique<GridSetQuorum>(n, parse_param(kind,
                                                          default_group(n)));
  if (name == "rst")
    return std::make_unique<RstQuorum>(n, parse_param(kind,
                                                      default_group(n)));
  if (name == "singleton") return std::make_unique<SingletonQuorum>(n);
  if (name == "all") return std::make_unique<AllQuorum>(n);
  DQME_CHECK_MSG(false, "unknown quorum kind: " << kind);
  return nullptr;  // unreachable
}

std::vector<std::string> known_quorum_kinds() {
  return {"grid",    "fpp", "tree",      "majority", "hqc",
          "gridset", "rst", "singleton", "all"};
}

}  // namespace dqme::quorum
