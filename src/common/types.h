// Basic identifier and time types shared by every dqme module.
#pragma once

#include <cstdint>
#include <limits>

namespace dqme {

// Identifies a site (a process and the machine it runs on, paper §2).
// Sites are numbered 0..N-1. kNoSite marks "no site" / sentinel slots.
using SiteId = int32_t;
inline constexpr SiteId kNoSite = -1;

// Lamport sequence numbers. 64 bits so they never wrap in a simulation.
using SeqNum = uint64_t;
inline constexpr SeqNum kMaxSeq = std::numeric_limits<SeqNum>::max();

// Simulated time in integer ticks. Experiments use kTick = 1us, with the
// mean one-way message delay T typically set to 1ms = 1000 ticks.
using Time = int64_t;
inline constexpr Time kMaxTime = std::numeric_limits<Time>::max();

// Identifies one lock object in the sharded lock service. A MutexSite
// arbitrates num_locks independent critical sections; LockIds are DENSE —
// 0..num_locks-1, usable as direct indices into per-lock state tables
// (mutex::MutexSite's lock table). kLock0 is the default lock every
// single-lock API shim forwards to; kNoLock marks "no lock" sentinels.
using LockId = int32_t;
inline constexpr LockId kLock0 = 0;
inline constexpr LockId kNoLock = -1;

// Causal span identity: one span per CS request attempt (src/obs). Derived
// deterministically from the request's (seq, site) identity — see
// span_of() in common/timestamp.h — so every layer that holds a ReqId can
// name the span without threading extra state. kNoSpan = "no request".
using SpanId = uint64_t;
inline constexpr SpanId kNoSpan = 0;

}  // namespace dqme
