#include "common/rng.h"

#include <numeric>

namespace dqme {

std::vector<int> Rng::sample_without_replacement(int n, int k) {
  DQME_CHECK(0 <= k && k <= n);
  std::vector<int> pool(static_cast<size_t>(n));
  std::iota(pool.begin(), pool.end(), 0);
  // Partial Fisher-Yates: after i swaps the first i entries are the sample.
  for (int i = 0; i < k; ++i) {
    int j = static_cast<int>(uniform_int(i, n - 1));
    std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
  }
  pool.resize(static_cast<size_t>(k));
  return pool;
}

}  // namespace dqme
