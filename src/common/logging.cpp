#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace dqme {

namespace {
// Atomic so parallel sweep workers can read the level while a test driver
// flips it — the level check is on the simulation hot path of every thread.
std::atomic<LogLevel> g_level{LogLevel::kOff};
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_line(LogLevel level, const std::string& line) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kInfo:  tag = "I"; break;
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kTrace: tag = "T"; break;
    case LogLevel::kOff:   return;
  }
  std::fprintf(stderr, "[%s] %s\n", tag, line.c_str());
}
}  // namespace detail

}  // namespace dqme
