#include "common/logging.h"

#include <cstdio>

namespace dqme {

namespace {
LogLevel g_level = LogLevel::kOff;
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_line(LogLevel level, const std::string& line) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kInfo:  tag = "I"; break;
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kTrace: tag = "T"; break;
    case LogLevel::kOff:   return;
  }
  std::fprintf(stderr, "[%s] %s\n", tag, line.c_str());
}
}  // namespace detail

}  // namespace dqme
