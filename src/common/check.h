// Lightweight runtime-invariant checking.
//
// DQME_CHECK is always on (also in release builds): protocol invariants in a
// mutual exclusion library are exactly the conditions whose silent violation
// would make every downstream result meaningless, so we pay the branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dqme {

// Thrown when an internal invariant fails. Tests assert on it; binaries let
// it terminate with the diagnostic message.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DQME_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace dqme

#define DQME_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::dqme::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define DQME_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream dqme_check_os_;                              \
      dqme_check_os_ << msg;                                          \
      ::dqme::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                   dqme_check_os_.str());             \
    }                                                                 \
  } while (0)
