// Minimal leveled logging. Off by default; protocol traces are enabled in
// targeted tests via set_log_level, keeping bulk simulation runs silent.
#pragma once

#include <sstream>
#include <string>

namespace dqme {

enum class LogLevel { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& line);
}

}  // namespace dqme

// Usage: DQME_LOG(kTrace, "site " << id << " got reply from " << j);
#define DQME_LOG(level, expr)                                      \
  do {                                                             \
    if (::dqme::LogLevel::level <= ::dqme::log_level()) {          \
      std::ostringstream dqme_log_os_;                             \
      dqme_log_os_ << expr;                                        \
      ::dqme::detail::log_line(::dqme::LogLevel::level,            \
                               dqme_log_os_.str());                \
    }                                                              \
  } while (0)
