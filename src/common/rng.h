// Seeded random number generation for deterministic simulations.
//
// Every stochastic component takes an explicit Rng (or a seed) so that a
// simulation run is a pure function of its configuration. Tests and benches
// report seeds; re-running with the same seed reproduces the trace exactly.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace dqme {

class Rng {
 public:
  explicit Rng(uint64_t seed = 1) : engine_(seed) {}

  // Derives an independent child stream (e.g. one per site) so adding a
  // consumer does not perturb the draws seen by the others.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  uint64_t next_u64() { return engine_(); }

  // Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    DQME_CHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  // Exponential variate with the given mean (not rate).
  double exponential(double mean) {
    DQME_CHECK(mean > 0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Exponential variate rounded to ticks, at least 1 tick.
  Time exponential_time(Time mean) {
    double v = exponential(static_cast<double>(mean));
    Time t = static_cast<Time>(v + 0.5);
    return t < 1 ? 1 : t;
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(uniform_int(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Samples k distinct elements from [0, n) without replacement.
  std::vector<int> sample_without_replacement(int n, int k);

 private:
  std::mt19937_64 engine_;
};

}  // namespace dqme
