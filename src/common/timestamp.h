// Lamport timestamps and request identities (paper §3.1).
//
// Every critical-section request carries a timestamp (sequence number, site
// number). Priority order: smaller sequence number wins; ties broken by
// smaller site number. ReqId(kMaxSeq, kMaxSeq-site) plays the paper's
// "(max, max)" role: it compares lower-priority than any real request.
#pragma once

#include <compare>
#include <ostream>

#include "common/types.h"

namespace dqme {

struct ReqId {
  SeqNum seq = kMaxSeq;
  SiteId site = kNoSite;

  // Higher priority == smaller in this ordering (priority queues and the
  // paper's "<" comparisons both read naturally).
  friend constexpr auto operator<=>(const ReqId& a, const ReqId& b) {
    if (auto c = a.seq <=> b.seq; c != 0) return c;
    return a.site <=> b.site;
  }
  friend constexpr bool operator==(const ReqId&, const ReqId&) = default;

  constexpr bool valid() const { return site != kNoSite && seq != kMaxSeq; }

  friend std::ostream& operator<<(std::ostream& os, const ReqId& r) {
    if (!r.valid()) return os << "(max,max)";
    return os << '(' << r.seq << ',' << r.site << ')';
  }
};

// The paper's lock value "(max,max)": lower priority than every request.
inline constexpr ReqId kNoRequest{};

}  // namespace dqme
