// Lamport timestamps and request identities (paper §3.1).
//
// Every critical-section request carries a timestamp (sequence number, site
// number). Priority order: smaller sequence number wins; ties broken by
// smaller site number. ReqId(kMaxSeq, kMaxSeq-site) plays the paper's
// "(max, max)" role: it compares lower-priority than any real request.
#pragma once

#include <compare>
#include <ostream>

#include "common/types.h"

namespace dqme {

struct ReqId {
  SeqNum seq = kMaxSeq;
  SiteId site = kNoSite;

  // Higher priority == smaller in this ordering (priority queues and the
  // paper's "<" comparisons both read naturally).
  friend constexpr auto operator<=>(const ReqId& a, const ReqId& b) {
    if (auto c = a.seq <=> b.seq; c != 0) return c;
    return a.site <=> b.site;
  }
  friend constexpr bool operator==(const ReqId&, const ReqId&) = default;

  constexpr bool valid() const { return site != kNoSite && seq != kMaxSeq; }

  friend std::ostream& operator<<(std::ostream& os, const ReqId& r) {
    if (!r.valid()) return os << "(max,max)";
    return os << '(' << r.seq << ',' << r.site << ')';
  }
};

// The paper's lock value "(max,max)": lower priority than every request.
inline constexpr ReqId kNoRequest{};

// Span identity of a request (observability layer): site in the high bits,
// Lamport sequence number in the low 40. A site's own requests carry
// strictly increasing seqs, so this names each request attempt uniquely
// within a run (simulations stay far below 2^40 clock ticks).
inline constexpr SpanId span_of(const ReqId& r) {
  if (!r.valid()) return kNoSpan;
  return (static_cast<SpanId>(static_cast<uint32_t>(r.site) + 1) << 40) |
         (r.seq & ((SpanId{1} << 40) - 1));
}

// Human-facing span spelling "site:seq" used by tools (--span=3:17).
inline SiteId span_site(SpanId s) {
  return static_cast<SiteId>((s >> 40) - 1);
}
inline SeqNum span_seq(SpanId s) { return s & ((SpanId{1} << 40) - 1); }

}  // namespace dqme
