#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by --trace-out.

Checks, beyond "it parses":
  * top-level shape: traceEvents list + displayTimeUnit;
  * every duration slice ("B") has its matching "E" on the same lane, in
    stack order, and no "E" underflows;
  * async spans ("b"/"e") pair up per id;
  * every flow start ("s") has exactly one flow finish ("f") with the
    same id, the finish is not before its start, and flow events sit on
    declared lanes;
  * proxy tagging is consistent: cat "proxy" if and only if the event is
    a "reply (proxy)" — the paper's 1T handoff must stay identifiable;
  * crit tagging is consistent: every flow arrow with args.crit == 1 has
    both its "s" and "f" endpoints tagged, and the tagged arrows form one
    single time-ordered chain — sorted by send time, each arrow's delivery
    is no later than the next arrow's send (the extracted critical path is
    a serial causal chain, never two concurrent hops);
  * monotonically sane timestamps (ts >= 0, E not before its B).

--crit additionally *requires* at least one crit-tagged arrow (for traces
exported by `dqme_trace --crit`, where an untagged file means the
highlight silently vanished).

Exit 0 on success; exit 1 with a message on the first violation.
Usage: scripts/validate_trace.py [--crit] TRACE.json [TRACE2.json ...]
"""
import json
import sys


def fail(path, msg):
    print(f"{path}: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path, require_crit=False):
    with open(path) as f:
        doc = json.load(f)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "traceEvents missing or empty")
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        fail(path, "displayTimeUnit missing")

    lanes = set()
    stacks = {}        # tid -> list of (name, ts) open B slices
    async_open = {}    # id -> open count
    flow_starts = {}   # id -> [count, ts of last start]
    flow_ends = {}     # id -> [count, ts of last finish]
    crit_s = {}        # crit-tagged flow id -> send ts
    crit_f = {}        # crit-tagged flow id -> delivery ts
    n_proxy = 0

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        ts = ev.get("ts", 0)
        tid = ev.get("tid")
        if ts < 0:
            fail(path, f"event {i}: negative ts {ts}")
        if ph == "M":
            if ev.get("name") == "thread_name":
                lanes.add(tid)
            continue
        if tid not in lanes:
            fail(path, f"event {i}: tid {tid} has no thread_name metadata")
        is_proxy_cat = ev.get("cat") == "proxy"
        is_proxy_name = ev.get("name") == "reply (proxy)"
        if is_proxy_cat != is_proxy_name:
            fail(path, f"event {i}: proxy tag mismatch "
                       f"(name {ev.get('name')!r}, cat {ev.get('cat')!r})")
        n_proxy += is_proxy_cat and ph == "s"
        if ph == "B":
            stacks.setdefault(tid, []).append((ev.get("name"), ts))
        elif ph == "E":
            stack = stacks.get(tid) or fail(
                path, f"event {i}: 'E' with empty stack on lane {tid}")
            name, open_ts = stack.pop()
            if ts < open_ts:
                fail(path, f"event {i}: '{name}' closes at {ts} "
                           f"before it opened at {open_ts}")
        elif ph == "b":
            async_open[ev["id"]] = async_open.get(ev["id"], 0) + 1
        elif ph == "e":
            if async_open.get(ev["id"], 0) <= 0:
                fail(path, f"event {i}: async 'e' without 'b' (id {ev['id']})")
            async_open[ev["id"]] -= 1
        elif ph == "s":
            entry = flow_starts.setdefault(ev["id"], [0, ts])
            entry[0] += 1
            entry[1] = ts
            if ev.get("args", {}).get("crit") == 1:
                crit_s[ev["id"]] = ts
        elif ph == "f":
            entry = flow_ends.setdefault(ev["id"], [0, ts])
            entry[0] += 1
            entry[1] = ts
            if ev.get("args", {}).get("crit") == 1:
                crit_f[ev["id"]] = ts
        elif ph == "X":
            if ev.get("dur", 0) < 0:
                fail(path, f"event {i}: negative dur")
        else:
            fail(path, f"event {i}: unknown phase {ph!r}")

    for tid, stack in stacks.items():
        if stack:
            fail(path, f"lane {tid}: {len(stack)} unclosed 'B' slice(s)")
    for sid, n in async_open.items():
        if n != 0:
            fail(path, f"async span id {sid}: {n} unclosed 'b'")
    only_s = set(flow_starts) - set(flow_ends)
    only_f = set(flow_ends) - set(flow_starts)
    if only_s or only_f:
        fail(path, f"unpaired flows: starts-without-finish {sorted(only_s)[:5]}"
                   f" finishes-without-start {sorted(only_f)[:5]}")
    for fid, (n, s_ts) in flow_starts.items():
        n_f, f_ts = flow_ends[fid]
        if n != 1 or n_f != 1:
            fail(path, f"flow {fid}: {n} start(s), {n_f} finish(es); "
                       f"want exactly one of each")
        if f_ts < s_ts:
            fail(path, f"flow {fid}: delivered at {f_ts} before its "
                       f"send at {s_ts}")

    # Crit-tagged arrows: both endpoints tagged, and together one serial
    # time-ordered chain (arrow i delivered no later than arrow i+1 sent).
    if set(crit_s) != set(crit_f):
        fail(path, f"crit tags split across s/f: s-only "
                   f"{sorted(set(crit_s) - set(crit_f))[:5]} f-only "
                   f"{sorted(set(crit_f) - set(crit_s))[:5]}")
    if require_crit and not crit_s:
        fail(path, "no crit-tagged flow arrows (--crit expected a "
                   "highlighted critical path)")
    chain = sorted(((crit_s[fid], crit_f[fid]) for fid in crit_s))
    for (s0, f0), (s1, f1) in zip(chain, chain[1:]):
        if f0 > s1:
            fail(path, f"crit arrows overlap: hop delivered at {f0} after "
                       f"the next hop's send at {s1} — not a single chain")

    n_slices = sum(1 for e in events if e.get("ph") in ("B", "X"))
    print(f"{path}: OK ({len(events)} events, {len(lanes)} lanes, "
          f"{n_slices} slices, {len(flow_starts)} flows, "
          f"{n_proxy} proxied, {len(crit_s)} crit hops)")


if __name__ == "__main__":
    args = sys.argv[1:]
    require_crit = "--crit" in args
    paths = [a for a in args if a != "--crit"]
    if not paths:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for p in paths:
        validate(p, require_crit)
