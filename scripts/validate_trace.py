#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by --trace-out.

Checks, beyond "it parses":
  * top-level shape: traceEvents list + displayTimeUnit;
  * every duration slice ("B") has its matching "E" on the same lane, in
    stack order, and no "E" underflows;
  * async spans ("b"/"e") pair up per id;
  * every flow start ("s") has exactly one flow finish ("f") with the
    same id, and flow events sit on declared lanes;
  * monotonically sane timestamps (ts >= 0, E not before its B).

Exit 0 on success; exit 1 with a message on the first violation.
Usage: scripts/validate_trace.py TRACE.json [TRACE2.json ...]
"""
import json
import sys


def fail(path, msg):
    print(f"{path}: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path):
    with open(path) as f:
        doc = json.load(f)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "traceEvents missing or empty")
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        fail(path, "displayTimeUnit missing")

    lanes = set()
    stacks = {}        # tid -> list of (name, ts) open B slices
    async_open = {}    # id -> open count
    flow_starts = {}   # id -> count
    flow_ends = {}     # id -> count

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        ts = ev.get("ts", 0)
        tid = ev.get("tid")
        if ts < 0:
            fail(path, f"event {i}: negative ts {ts}")
        if ph == "M":
            if ev.get("name") == "thread_name":
                lanes.add(tid)
            continue
        if tid not in lanes:
            fail(path, f"event {i}: tid {tid} has no thread_name metadata")
        if ph == "B":
            stacks.setdefault(tid, []).append((ev.get("name"), ts))
        elif ph == "E":
            stack = stacks.get(tid) or fail(
                path, f"event {i}: 'E' with empty stack on lane {tid}")
            name, open_ts = stack.pop()
            if ts < open_ts:
                fail(path, f"event {i}: '{name}' closes at {ts} "
                           f"before it opened at {open_ts}")
        elif ph == "b":
            async_open[ev["id"]] = async_open.get(ev["id"], 0) + 1
        elif ph == "e":
            if async_open.get(ev["id"], 0) <= 0:
                fail(path, f"event {i}: async 'e' without 'b' (id {ev['id']})")
            async_open[ev["id"]] -= 1
        elif ph == "s":
            flow_starts[ev["id"]] = flow_starts.get(ev["id"], 0) + 1
        elif ph == "f":
            flow_ends[ev["id"]] = flow_ends.get(ev["id"], 0) + 1
        elif ph == "X":
            if ev.get("dur", 0) < 0:
                fail(path, f"event {i}: negative dur")
        else:
            fail(path, f"event {i}: unknown phase {ph!r}")

    for tid, stack in stacks.items():
        if stack:
            fail(path, f"lane {tid}: {len(stack)} unclosed 'B' slice(s)")
    for sid, n in async_open.items():
        if n != 0:
            fail(path, f"async span id {sid}: {n} unclosed 'b'")
    if flow_starts != flow_ends:
        only_s = set(flow_starts) - set(flow_ends)
        only_f = set(flow_ends) - set(flow_starts)
        fail(path, f"unpaired flows: starts-without-finish {sorted(only_s)[:5]}"
                   f" finishes-without-start {sorted(only_f)[:5]}")

    n_slices = sum(1 for e in events if e.get("ph") in ("B", "X"))
    print(f"{path}: OK ({len(events)} events, {len(lanes)} lanes, "
          f"{n_slices} slices, {sum(flow_starts.values())} flows)")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for p in sys.argv[1:]:
        validate(p)
