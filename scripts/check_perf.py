#!/usr/bin/env python3
"""Perf smoke gate: fresh micro_core numbers vs the committed baseline.

Usage:
    check_perf.py FRESH.json COMMITTED.json [--tolerance 0.35] [--out REPORT.json]

Compares the throughput metrics that PR 4 optimised — `e2e_events_per_sec`
(protocol + network on the event loop) and `events_per_sec_slab` (the raw
slab event store) — plus the sharded-lock-table row
`e2e_events_per_sec_locks256` (the x3 service shape: 256 locks, open-loop
arrivals, piggybacking on) between a fresh `micro_core --quick --json` run
and the committed `BENCH_micro_core.json`. A metric fails when the fresh value drops
more than `--tolerance` (default 35%) below the committed one; faster is
always fine. The tolerance is deliberately generous: quick mode uses a
shorter churn/measure window and CI machines are slower and noisier than the
machine the baseline was recorded on — this gate exists to catch hot-path
regressions (an accidental per-message allocation is a 2x hit, not a 35%
one), not to benchmark CI hardware.

Exit status: 0 when every gated metric passes, 1 otherwise. With --out the
full comparison is written as JSON for the CI artifact.
"""

import argparse
import json
import sys

GATED_METRICS = ["e2e_events_per_sec", "events_per_sec_slab",
                 "e2e_events_per_sec_locks256"]


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    return {row["metric"]: row["mean"] for row in doc.get("metrics", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="JSON from the fresh micro_core run")
    ap.add_argument("committed", help="committed BENCH_micro_core.json")
    ap.add_argument("--tolerance", type=float, default=0.35,
                    help="max allowed fractional drop (default 0.35)")
    ap.add_argument("--out", help="write the comparison report as JSON")
    args = ap.parse_args()

    fresh = load_metrics(args.fresh)
    committed = load_metrics(args.committed)

    rows = []
    ok = True
    for metric in GATED_METRICS:
        if metric not in fresh or metric not in committed:
            rows.append({"metric": metric, "status": "missing"})
            ok = False
            continue
        base = committed[metric]
        got = fresh[metric]
        ratio = got / base if base else float("inf")
        passed = ratio >= 1.0 - args.tolerance
        ok = ok and passed
        rows.append({
            "metric": metric,
            "committed": base,
            "fresh": got,
            "ratio": ratio,
            "floor": 1.0 - args.tolerance,
            "status": "pass" if passed else "FAIL",
        })

    # Per-algorithm rows are informational (no committed quick-mode baseline
    # to hold them to) but land in the report so trends are visible.
    info = {m: v for m, v in fresh.items()
            if m.startswith("e2e_events_per_sec_") and m not in GATED_METRICS}

    width = max(len(m) for m in GATED_METRICS) + 2
    for row in rows:
        if row["status"] == "missing":
            print(f"{row['metric']:<{width}} MISSING from one of the inputs")
            continue
        print(f"{row['metric']:<{width}} committed={row['committed']:>14,.0f}"
              f"  fresh={row['fresh']:>14,.0f}  ratio={row['ratio']:.3f}"
              f"  (floor {row['floor']:.2f})  {row['status']}")
    for metric in sorted(info):
        print(f"{metric:<{width}} fresh={info[metric]:>14,.0f}  (info only)")

    if args.out:
        with open(args.out, "w") as f:
            json.dump({"ok": ok, "tolerance": args.tolerance,
                       "gated": rows, "info": info}, f, indent=2)
            f.write("\n")

    if not ok:
        print("perf gate FAILED: hot-path throughput regressed past the "
              "tolerance; see rows above", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
