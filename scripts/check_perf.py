#!/usr/bin/env python3
"""Perf smoke gate: fresh bench numbers vs the committed baselines.

Usage:
    check_perf.py FRESH.json COMMITTED.json [--tolerance 0.55]
                  [--rt-fresh FRESH_RT.json --rt-committed BENCH_rt_core.json]
                  [--rt-tolerance 0.6] [--require-rt-scaling 2.0]
                  [--out REPORT.json]

Simulator half (positional args): compares the throughput metrics that PR 4
optimised — `e2e_events_per_sec` (protocol + network on the event loop) and
`events_per_sec_slab` (the raw slab event store) — plus the sharded
lock-table row `e2e_events_per_sec_locks256` (the x3 service shape) between
a fresh `micro_core --quick --json` run and the committed
`BENCH_micro_core.json`. A metric fails when the fresh value drops more
than `--tolerance` (default 55%) below the committed one; faster is always
fine. The tolerance is deliberately generous, for two stacked reasons:
the committed baseline is a FULL run (the repo's published numbers) while
CI runs quick mode, whose 8x-shorter measure windows alone cost the e2e
rows ~35% of measured throughput; and CI machines are slower and noisier
than the machine the baseline was recorded on. This gate exists to catch
hot-path regressions (an accidental per-message allocation is a 2x hit,
not a 50% one), not to benchmark CI hardware.

Real-threads half (--rt-fresh/--rt-committed): compares the gated rt_core
rows (cao_singhal locks=256 handoffs/sec at 2 and 8 threads) under the
wider `--rt-tolerance` (default 60%) — wall-clock numbers from real
threads on shared CI hosts swing much harder than simulated-tick rates.
`--require-rt-scaling` additionally gates the FRESH value of
`rt_scaling_cao_singhal_8t_over_2t_locks256` as an absolute floor: the
8-thread row must beat the 2-thread row by at least that factor, the
DESIGN.md §9 scaling claim.

Both input files carry a `provenance` block (host, date, commit) written
by the bench harness; it is printed for each side of every comparison so a
stale committed baseline is visible instead of silently trusted.

Exit status: 0 when every gated metric passes, 1 otherwise. With --out the
full comparison is written as JSON for the CI artifact.
"""

import argparse
import json
import sys

GATED_METRICS = ["e2e_events_per_sec", "events_per_sec_slab",
                 "e2e_events_per_sec_locks256"]

RT_GATED_METRICS = ["rt_handoffs_per_sec_cao_singhal_2t_locks256",
                    "rt_handoffs_per_sec_cao_singhal_8t_locks256"]

RT_SCALING_METRIC = "rt_scaling_cao_singhal_8t_over_2t_locks256"


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def metrics_of(doc):
    return {row["metric"]: row["mean"] for row in doc.get("metrics", [])}


def print_provenance(label, path, doc):
    prov = doc.get("provenance", {})
    host = prov.get("host", "unknown")
    date = prov.get("date", "unknown")
    commit = prov.get("commit", "unknown")
    print(f"  [{label}] {path}: host={host} date={date} commit={commit}")


def compare(metrics, fresh, committed, tolerance, rows):
    ok = True
    for metric in metrics:
        if metric not in fresh or metric not in committed:
            rows.append({"metric": metric, "status": "missing"})
            ok = False
            continue
        base = committed[metric]
        got = fresh[metric]
        ratio = got / base if base else float("inf")
        passed = ratio >= 1.0 - tolerance
        ok = ok and passed
        rows.append({
            "metric": metric,
            "committed": base,
            "fresh": got,
            "ratio": ratio,
            "floor": 1.0 - tolerance,
            "status": "pass" if passed else "FAIL",
        })
    return ok


def print_rows(rows):
    if not rows:
        return
    width = max(len(r["metric"]) for r in rows) + 2
    for row in rows:
        if row["status"] == "missing":
            print(f"{row['metric']:<{width}} MISSING from one of the inputs")
            continue
        print(f"{row['metric']:<{width}} committed={row['committed']:>14,.0f}"
              f"  fresh={row['fresh']:>14,.0f}  ratio={row['ratio']:.3f}"
              f"  (floor {row['floor']:.2f})  {row['status']}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="JSON from the fresh micro_core run")
    ap.add_argument("committed", help="committed BENCH_micro_core.json")
    ap.add_argument("--tolerance", type=float, default=0.55,
                    help="max allowed fractional drop, sim rows — covers "
                         "the structural quick-vs-full gap plus hardware "
                         "delta (default 0.55)")
    ap.add_argument("--rt-fresh",
                    help="JSON from a fresh rt_core run (enables the rt "
                         "half; requires --rt-committed)")
    ap.add_argument("--rt-committed",
                    help="committed BENCH_rt_core.json")
    ap.add_argument("--rt-tolerance", type=float, default=0.6,
                    help="max allowed fractional drop, rt rows — wall-clock "
                         "noise needs more headroom (default 0.6)")
    ap.add_argument("--require-rt-scaling", type=float, default=None,
                    metavar="FACTOR",
                    help="absolute floor for the fresh "
                         f"{RT_SCALING_METRIC} value")
    ap.add_argument("--out", help="write the comparison report as JSON")
    args = ap.parse_args()
    if bool(args.rt_fresh) != bool(args.rt_committed):
        ap.error("--rt-fresh and --rt-committed must be given together")

    fresh_doc = load_doc(args.fresh)
    committed_doc = load_doc(args.committed)
    fresh = metrics_of(fresh_doc)
    committed = metrics_of(committed_doc)

    print("simulator rows:")
    print_provenance("fresh", args.fresh, fresh_doc)
    print_provenance("committed", args.committed, committed_doc)
    rows = []
    ok = compare(GATED_METRICS, fresh, committed, args.tolerance, rows)
    print_rows(rows)

    # Per-algorithm rows are informational (no committed quick-mode baseline
    # to hold them to) but land in the report so trends are visible.
    info = {m: v for m, v in fresh.items()
            if m.startswith("e2e_events_per_sec_") and m not in GATED_METRICS}
    if info:
        width = max(len(m) for m in info) + 2
        for metric in sorted(info):
            print(f"{metric:<{width}} fresh={info[metric]:>14,.0f}"
                  "  (info only)")

    rt_rows = []
    rt_scaling_row = None
    if args.rt_fresh:
        rt_fresh_doc = load_doc(args.rt_fresh)
        rt_committed_doc = load_doc(args.rt_committed)
        rt_fresh = metrics_of(rt_fresh_doc)
        rt_committed = metrics_of(rt_committed_doc)
        print("real-threads rows:")
        print_provenance("fresh", args.rt_fresh, rt_fresh_doc)
        print_provenance("committed", args.rt_committed, rt_committed_doc)
        ok = compare(RT_GATED_METRICS, rt_fresh, rt_committed,
                     args.rt_tolerance, rt_rows) and ok
        print_rows(rt_rows)
        if args.require_rt_scaling is not None:
            got = rt_fresh.get(RT_SCALING_METRIC)
            passed = got is not None and got >= args.require_rt_scaling
            ok = ok and passed
            rt_scaling_row = {
                "metric": RT_SCALING_METRIC,
                "fresh": got,
                "floor": args.require_rt_scaling,
                "committed": rt_committed.get(RT_SCALING_METRIC),
                "status": "pass" if passed else "FAIL",
            }
            shown = "MISSING" if got is None else f"{got:.2f}x"
            print(f"{RT_SCALING_METRIC}  fresh={shown}"
                  f"  (absolute floor {args.require_rt_scaling:.2f}x)"
                  f"  {rt_scaling_row['status']}")

    if args.out:
        report = {"ok": ok, "tolerance": args.tolerance, "gated": rows,
                  "info": info}
        if args.rt_fresh:
            report["rt_tolerance"] = args.rt_tolerance
            report["rt_gated"] = rt_rows
            if rt_scaling_row is not None:
                report["rt_scaling"] = rt_scaling_row
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    if not ok:
        print("perf gate FAILED: hot-path throughput regressed past the "
              "tolerance; see rows above", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
