#!/usr/bin/env python3
"""Validate critical-path delay-budget JSON (obs::CritStats::write_json).

Accepts any of:
  * a bare CritStats object (`dqme_critpath --json=FILE`),
  * a bench --json file carrying a top-level "critpath" key,
  * the `dqme_critpath --table1 --json=FILE` suite
    ({"suite": "dqme_critpath_table1", "algos": {...}}).

Checks, beyond "it parses":
  * conservation — the five bucket tick totals plus residual_ticks equal
    waiting_ticks EXACTLY (the engine's tiling contract, to the tick),
    and residual_ticks is zero: every tick of every request's wait is
    attributed to a named bucket;
  * shape — all five buckets (wire/queue/holder/proxy/other) present,
    counts non-negative, a bucket with ticks has edges and vice versa
    (holder/queue segments may be synthesized fillers, so edges there
    only need to be <= path count bounds, not tick-derived);
  * tails — the tail_hops histogram sums to the contended path count,
    tail_ticks <= waiting_ticks, and mean_tail_in_t is consistent with
    tail_ticks / (contended * mean_delay) when contended > 0;
  * per-lock rows — lock paths/contended/ticks sum to the global totals
    (the "-1" overflow row included).

--require-table1 additionally requires a table1 suite file with "ok"
true and, per algorithm, every contended tail in the expected bin:
tail_hops[expected_tail_hops] == contended (all other bins zero) and
tail_ticks == contended * expected_tail_t * mean_delay — the paper's
1*T (Cao-Singhal proxy handoff) vs 2*T (Maekawa relay) gate.

Exit 0 on success; exit 1 with a message on the first violation.
Usage: scripts/validate_critpath.py [--require-table1] FILE [FILE ...]
"""
import json
import sys

BUCKETS = ("wire", "queue", "holder", "proxy", "other")


def fail(path, msg):
    print(f"{path}: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_stats(path, cs, label=""):
    where = f"critpath{label}"
    if not isinstance(cs, dict) or not cs:
        fail(path, f"{where}: empty or not an object (attribution disabled?)")
    for key in ("mean_delay", "paths", "contended", "waiting_ticks",
                "residual_ticks", "tail_ticks", "buckets", "tail_hops",
                "locks"):
        if key not in cs:
            fail(path, f"{where}: missing key {key!r}")
    if cs["contended"] > cs["paths"]:
        fail(path, f"{where}: contended {cs['contended']} > paths "
                   f"{cs['paths']}")

    buckets = cs["buckets"]
    if set(buckets) != set(BUCKETS):
        fail(path, f"{where}: bucket set {sorted(buckets)} != "
                   f"{sorted(BUCKETS)}")
    ticks_sum = 0
    for b in BUCKETS:
        ticks, edges = buckets[b].get("ticks"), buckets[b].get("edges")
        if not isinstance(ticks, int) or ticks < 0 or \
           not isinstance(edges, int) or edges < 0:
            fail(path, f"{where}: bucket {b}: bad ticks/edges "
                       f"({ticks!r}/{edges!r})")
        if (ticks > 0) != (edges > 0):
            fail(path, f"{where}: bucket {b}: {ticks} ticks but "
                       f"{edges} edges")
        ticks_sum += ticks

    # The conservation gate: attribution tiles the waits exactly.
    if ticks_sum + cs["residual_ticks"] != cs["waiting_ticks"]:
        fail(path, f"{where}: bucket ticks {ticks_sum} + residual "
                   f"{cs['residual_ticks']} != waiting_ticks "
                   f"{cs['waiting_ticks']}")
    if cs["residual_ticks"] != 0:
        fail(path, f"{where}: residual_ticks {cs['residual_ticks']} != 0 "
                   f"(unattributed wait)")

    hops = cs["tail_hops"]
    if not isinstance(hops, list) or len(hops) < 2 or \
       any(not isinstance(h, int) or h < 0 for h in hops):
        fail(path, f"{where}: malformed tail_hops {hops!r}")
    if sum(hops) != cs["contended"]:
        fail(path, f"{where}: tail_hops sums to {sum(hops)}, contended is "
                   f"{cs['contended']}")
    if cs["tail_ticks"] > cs["waiting_ticks"]:
        fail(path, f"{where}: tail_ticks {cs['tail_ticks']} > waiting_ticks "
                   f"{cs['waiting_ticks']}")
    if cs["contended"] > 0 and cs["mean_delay"] > 0:
        want = cs["tail_ticks"] / (cs["contended"] * cs["mean_delay"])
        # The writer prints 6 significant digits; compare to that grain.
        if abs(cs.get("mean_tail_in_t", -1) - want) > max(1e-9, want * 1e-5):
            fail(path, f"{where}: mean_tail_in_t "
                       f"{cs.get('mean_tail_in_t')} != {want}")

    lock_paths = sum(row["paths"] for row in cs["locks"])
    lock_cont = sum(row["contended"] for row in cs["locks"])
    if cs["locks"] and (lock_paths != cs["paths"] or
                        lock_cont != cs["contended"]):
        fail(path, f"{where}: lock rows sum to {lock_paths} paths / "
                   f"{lock_cont} contended, global is {cs['paths']} / "
                   f"{cs['contended']}")
    for b in BUCKETS:
        per_lock = sum(row["ticks"][b] for row in cs["locks"])
        if cs["locks"] and per_lock != buckets[b]["ticks"]:
            fail(path, f"{where}: lock rows sum {per_lock} {b} ticks, "
                       f"global bucket has {buckets[b]['ticks']}")
    return cs


def check_table1(path, doc):
    if doc.get("suite") != "dqme_critpath_table1":
        fail(path, "--require-table1 needs a dqme_critpath --table1 file")
    if doc.get("ok") is not True:
        fail(path, f"table1 suite reports ok={doc.get('ok')!r}")
    mean_delay = doc.get("mean_delay", 0)
    algos = doc.get("algos", {})
    if not algos:
        fail(path, "table1 suite has no algos")
    for name, entry in algos.items():
        want_hops = entry.get("expected_tail_hops")
        want_t = entry.get("expected_tail_t")
        cs = check_stats(path, entry.get("critpath"), f"[{name}]")
        if cs["contended"] == 0:
            fail(path, f"{name}: no contended paths to gate")
        for i, n in enumerate(cs["tail_hops"]):
            want = cs["contended"] if i == want_hops else 0
            if n != want:
                fail(path, f"{name}: tail_hops[{i}] = {n}, want {want} "
                           f"(every tail must be {want_hops} hops)")
        want_ticks = cs["contended"] * want_t * mean_delay
        if cs["tail_ticks"] != want_ticks:
            fail(path, f"{name}: tail_ticks {cs['tail_ticks']} != "
                       f"{want_ticks} ({want_t}*T per contended path)")
    return [f"{n}={e['expected_tail_hops']}hop" for n, e in algos.items()]


def validate(path, require_table1=False):
    with open(path) as f:
        doc = json.load(f)

    notes = []
    if doc.get("suite") == "dqme_critpath_table1":
        notes = check_table1(path, doc)
        stats = [doc["algos"][a]["critpath"] for a in doc["algos"]]
    elif require_table1:
        fail(path, "--require-table1 needs a dqme_critpath --table1 file")
    elif "critpath" in doc:                      # bench --json wrapper
        stats = [check_stats(path, doc["critpath"])]
    else:                                        # bare CritStats object
        stats = [check_stats(path, doc)]

    paths = sum(s["paths"] for s in stats)
    waiting = sum(s["waiting_ticks"] for s in stats)
    extra = f", table1 gate [{' '.join(notes)}]" if notes else ""
    print(f"{path}: OK ({paths} paths, {waiting} waiting ticks, "
          f"residual 0{extra})")


if __name__ == "__main__":
    args = sys.argv[1:]
    require_table1 = "--require-table1" in args
    files = [a for a in args if a != "--require-table1"]
    if not files:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for p in files:
        validate(p, require_table1)
