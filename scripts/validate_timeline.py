#!/usr/bin/env python3
"""Validate the windowed timeline JSON emitted by obs::Timeline::write_json.

Accepts either a raw timeline file or a bench --json file (the timeline
object sits under the top-level "timeline" key). Checks, beyond "it
parses":
  * header shape: integer origin, positive window, window count;
  * every counter/gauge array and every sketch sub-array ("count", "p50",
    "p95", "p99", "p999") is padded to exactly `windows` entries;
  * counters and sketch counts are non-negative integers, percentile
    arrays are non-decreasing within each window (p50 <= p95 <= p99 <=
    p999);
  * sketch specs carry a positive lo and bucket count;
  * markers are (at, label) pairs sorted by (at, label) — the merge
    contract's serialized order;
  * --require-marker PREFIX: at least one marker label starts with PREFIX
    (CI's "the crash run actually recorded a recovery" gate; repeatable).

Exit 0 on success; exit 1 with a message on the first violation.
Usage: scripts/validate_timeline.py [--require-marker PREFIX ...] FILE ...
"""
import json
import sys


def fail(path, msg):
    print(f"{path}: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_array(path, label, arr, windows, integral=False):
    if not isinstance(arr, list):
        fail(path, f"{label}: not an array")
    if len(arr) != windows:
        fail(path, f"{label}: {len(arr)} entries, want {windows}")
    for i, v in enumerate(arr):
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            fail(path, f"{label}[{i}]: non-numeric {v!r}")
        if integral and (not isinstance(v, int) or v < 0):
            fail(path, f"{label}[{i}]: want a non-negative integer, got {v!r}")


def validate(path, require_markers):
    with open(path) as f:
        doc = json.load(f)
    if "timeline" in doc:  # bench --json wrapper
        doc = doc["timeline"]
    if "origin" not in doc:
        fail(path, "no timeline object (missing 'origin' — was the bench "
                   "run with a timeline_window?)")

    if not isinstance(doc.get("origin"), int):
        fail(path, "origin must be an integer tick")
    window = doc.get("window")
    if not isinstance(window, int) or window <= 0:
        fail(path, f"window must be a positive tick count, got {window!r}")
    windows = doc.get("windows")
    if not isinstance(windows, int) or windows < 0:
        fail(path, f"windows must be a non-negative count, got {windows!r}")

    n_series = 0
    for name, arr in sorted(doc.get("counters", {}).items()):
        check_array(path, f"counters.{name}", arr, windows, integral=True)
        n_series += 1
    for name, arr in sorted(doc.get("gauges", {}).items()):
        check_array(path, f"gauges.{name}", arr, windows)
        n_series += 1

    pcts = ("p50", "p95", "p99", "p999")
    for name, sk in sorted(doc.get("sketches", {}).items()):
        if not isinstance(sk.get("lo"), (int, float)) or sk["lo"] <= 0:
            fail(path, f"sketches.{name}: bad lo {sk.get('lo')!r}")
        if not isinstance(sk.get("buckets"), int) or sk["buckets"] <= 0:
            fail(path, f"sketches.{name}: bad buckets {sk.get('buckets')!r}")
        check_array(path, f"sketches.{name}.count", sk.get("count"),
                    windows, integral=True)
        for p in pcts:
            check_array(path, f"sketches.{name}.{p}", sk.get(p), windows)
        for w in range(windows):
            vals = [sk[p][w] for p in pcts]
            if vals != sorted(vals):
                fail(path, f"sketches.{name}: window {w} percentiles "
                           f"not monotone: {vals}")
        n_series += 1

    markers = doc.get("markers", [])
    if not isinstance(markers, list):
        fail(path, "markers: not an array")
    keys = []
    for i, m in enumerate(markers):
        if not isinstance(m.get("at"), int) or not isinstance(
                m.get("label"), str):
            fail(path, f"markers[{i}]: want {{at: int, label: str}}, "
                       f"got {m!r}")
        keys.append((m["at"], m["label"]))
    if keys != sorted(keys):
        fail(path, "markers not sorted by (at, label)")
    if len(set(keys)) != len(keys):
        fail(path, "duplicate markers survived the merge union")

    for prefix in require_markers:
        if not any(label.startswith(prefix) for _, label in keys):
            fail(path, f"no marker with prefix {prefix!r} "
                       f"(markers: {[l for _, l in keys][:8]})")

    print(f"{path}: OK ({n_series} series x {windows} windows, "
          f"{len(markers)} markers)")


if __name__ == "__main__":
    require, paths = [], []
    args = sys.argv[1:]
    while args:
        a = args.pop(0)
        if a == "--require-marker":
            if not args:
                print(__doc__, file=sys.stderr)
                sys.exit(2)
            require.append(args.pop(0))
        else:
            paths.append(a)
    if not paths:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for p in paths:
        validate(p, require)
