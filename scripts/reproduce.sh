#!/bin/sh
# Full reproduction: build, run every test suite, run every experiment
# bench, and leave the transcripts at the repository root.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt
echo "Done: see test_output.txt and bench_output.txt"
