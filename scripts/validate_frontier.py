#!/usr/bin/env python3
"""Validate dqme_explore frontier files (suspended schedule-space search).

Accepts both formats the explorer writes:
  * v1 — the sequential Explorer's single DFS stack: a header object,
    then one {"frame": i, ...} line per stack level;
  * v2 — the ParallelExplorer's multi-task partition: a header object,
    then one {"task": i, ...} line per remaining subtree.

Checks, beyond "it parses":
  * header — the marker version is known, the WorldConfig fields needed
    to rebuild the world are present (algo/n/quorum/cs_per_site), the
    carried counters are non-negative integers, and the DPOR mode (when
    present) is one of sleep|source;
  * frame/task shape — indices are consecutive from zero; every action
    string decodes ("d src dst" / "x s" / "n v r" / "c s"); the sleep and
    sealed bit-strings are 0/1-valued and exactly as long as the action
    list (set-membership bounds: one bit per enabled action, nothing
    more); the resume cursor `next` is within [0, len(actions)];
  * v1 stack discipline — every non-leaf frame has descended (next >= 1),
    otherwise the implicit replay prefix is undefined;
  * v2 partition — each task's DFS index path has exactly one component
    per prefix action (depth consistency), and no two tasks share a path
    (duplicate nodes would be explored twice on resume);
  * v2 header `tasks` count matches the number of task lines.

Exit 0 on success; exit 1 with a message on the first violation.
Usage: scripts/validate_frontier.py FILE [FILE ...]
"""
import json
import re
import sys

ACTION_RE = re.compile(r"^([dn]) (-?\d+) (-?\d+)$|^([xc]) (-?\d+)$")
COUNTERS = ("schedules", "truncated", "nodes", "replays", "replay_steps",
            "sleep_skips")


def fail(path, msg):
    print(f"{path}: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_actions(path, where, text):
    """Returns the number of actions in a 'd 0 1;x 2;...' string."""
    if text == "":
        return 0
    items = text.split(";")
    for item in items:
        if not ACTION_RE.match(item):
            fail(path, f"{where}: undecodable action {item!r}")
    return len(items)


def check_bits(path, where, bits, n, what):
    if len(bits) != n:
        fail(path, f"{where}: {what} has {len(bits)} bits for {n} actions")
    if bits.strip("01") != "":
        fail(path, f"{where}: {what} is not a 0/1 string: {bits!r}")


def check_header(path, header):
    for key in ("algo", "n", "quorum", "cs_per_site"):
        if key not in header:
            fail(path, f"header missing WorldConfig field {key!r}")
    if not isinstance(header["n"], int) or header["n"] < 2:
        fail(path, f"header n {header['n']!r} is not a site count")
    for key in COUNTERS:
        v = header.get(key, 0)
        if not isinstance(v, int) or v < 0:
            fail(path, f"header counter {key}={v!r} invalid")
    dpor = header.get("dpor")
    if dpor is not None and dpor not in ("sleep", "source"):
        fail(path, f"header dpor {dpor!r} not in sleep|source")


def check_v1(path, lines):
    for i, obj in enumerate(lines):
        where = f"frame {i}"
        if obj.get("frame") != i:
            fail(path, f"{where}: index {obj.get('frame')!r}, expected {i}")
        n = check_actions(path, where, obj.get("actions", ""))
        if n == 0:
            fail(path, f"{where}: empty enabled set")
        check_bits(path, where, obj.get("sleep", ""), n, "sleep set")
        if "sealed" in obj:
            check_bits(path, where, obj["sealed"], n, "sealed set")
        nxt = obj.get("next")
        if not isinstance(nxt, int) or not 0 <= nxt <= n:
            fail(path, f"{where}: cursor next={nxt!r} outside [0, {n}]")
        if i + 1 < len(lines) and nxt == 0:
            fail(path, f"{where}: non-leaf frame never descended")
    if not lines:
        fail(path, "v1 frontier has no frames")


def check_v2(path, header, lines):
    if "tasks" in header and header["tasks"] != len(lines):
        fail(path, f"header says {header['tasks']} tasks, file has "
                   f"{len(lines)}")
    seen_paths = set()
    for i, obj in enumerate(lines):
        where = f"task {i}"
        if obj.get("task") != i:
            fail(path, f"{where}: index {obj.get('task')!r}, expected {i}")
        prefix_len = check_actions(path, where, obj.get("prefix", ""))
        dfs_path = obj.get("path", "")
        comps = dfs_path.split() if dfs_path else []
        if any(not c.isdigit() for c in comps):
            fail(path, f"{where}: malformed DFS path {dfs_path!r}")
        if len(comps) != prefix_len:
            fail(path, f"{where}: path depth {len(comps)} != prefix "
                       f"length {prefix_len}")
        if dfs_path in seen_paths:
            fail(path, f"{where}: duplicate node at path {dfs_path!r}")
        seen_paths.add(dfs_path)
        n = check_actions(path, where, obj.get("actions", ""))
        if n == 0:
            fail(path, f"{where}: empty enabled set")
        check_bits(path, where, obj.get("sleep", ""), n, "sleep set")
        check_bits(path, where, obj.get("sealed", ""), n, "sealed set")
        nxt = obj.get("next")
        if not isinstance(nxt, int) or not 0 <= nxt <= n:
            fail(path, f"{where}: cursor next={nxt!r} outside [0, {n}]")
    if not lines:
        fail(path, "v2 frontier has no tasks")


def check_file(path):
    with open(path) as f:
        raw = [line for line in f.read().splitlines() if line.strip()]
    if not raw:
        fail(path, "empty file")
    try:
        objs = [json.loads(line) for line in raw]
    except json.JSONDecodeError as e:
        fail(path, f"not line-delimited JSON: {e}")
    header, body = objs[0], objs[1:]
    version = header.get("dqme_frontier")
    if version not in (1, 2):
        fail(path, f"unknown dqme_frontier version {version!r}")
    check_header(path, header)
    if version == 1:
        check_v1(path, body)
    else:
        check_v2(path, header, body)
    kind = "stack frames" if version == 1 else "tasks"
    print(f"{path}: OK (v{version}, {len(body)} {kind}, "
          f"{header.get('schedules', 0)} schedules carried)")


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    for path in argv[1:]:
        check_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
