// dqme_trace — print the full message timeline of a small scenario.
//
// Runs a handful of sites under brief contention and dumps every control
// message with its delivery time: the fastest way to *see* the paper's
// §3 mechanism (request -> transfer -> forwarded reply -> parameterized
// release) in action. Every message line now carries the causal span
// ("site:seq") of the request it works toward; --span narrows the timeline
// to one request's story, and --json exports the same run as Chrome
// trace-event JSON for chrome://tracing / ui.perfetto.dev.
//
// Multi-lock service runs: --locks=M shards the scenario over M independent
// locks (the x3 lock-service shape, shrunk to readable size); every line
// then carries its LockId, and --lock=ID slices the timeline — text or
// Chrome JSON — down to one lock's story.
//
// --timeline=FILE is a render mode, no simulation: it reads the windowed
// timeline JSON a bench emits under its "timeline" key (or a raw
// obs::Timeline::write_json file) and prints each series as an ASCII
// sparkline with markers. The timeline writer pins one series per line for
// exactly this consumer — no JSON library here.
//
// --crit highlights one request's causal critical path (the slowest, or
// --span's): its delay budget renders as ASCII, and the Chrome export tags
// the path's wire hops — slices and flow arrows — with "crit": 1, which
// scripts/validate_trace.py --crit checks forms a single time-ordered
// chain.
//
// usage: dqme_trace [N] [num_cs] [seed] [--span=SITE:SEQ] [--lock=ID]
//                   [--locks=M] [--crit] [--json[=PATH]] [--timeline=FILE]
//   (defaults: 4 sites, 6 CS, seed 1; --json with no PATH writes stdout)
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.h"
#include "core/cao_singhal.h"
#include "harness/workload.h"
#include "net/trace.h"
#include "obs/chrome_trace.h"
#include "obs/critpath.h"
#include "quorum/factory.h"

namespace {

void usage() {
  std::cerr << "usage: dqme_trace [N] [num_cs] [seed] [--span=SITE:SEQ] "
               "[--lock=ID] [--locks=M] [--crit] [--json[=PATH]] "
               "[--timeline=FILE]\n";
}

// ---- --timeline render mode -------------------------------------------
// Line-oriented scan of obs::Timeline::write_json output: the writer emits
// one series per line, so a find/strtod pass recovers every array without
// a JSON parser. Works on a raw timeline file or a bench --json file (the
// timeline object sits under the "timeline" key; the registry object is a
// single unrelated line and never matches the "origin" anchor first).

// First double after `"key": ` on the line, or fallback when absent.
double field_num(const std::string& line, const std::string& key,
                 double fallback) {
  const std::string anchor = "\"" + key + "\":";
  const auto at = line.find(anchor);
  if (at == std::string::npos) return fallback;
  return std::strtod(line.c_str() + at + anchor.size(), nullptr);
}

// First quoted string on the line (series/marker names never contain
// escapes — Timeline::write_json escapes only `"` and `\`, and every name
// this repo emits is plain).
std::string first_quoted(const std::string& line) {
  const auto b = line.find('"');
  if (b == std::string::npos) return {};
  const auto e = line.find('"', b + 1);
  if (e == std::string::npos) return {};
  return line.substr(b + 1, e - b - 1);
}

// Numbers of the first [...] on the line.
std::vector<double> parse_array(const std::string& line) {
  std::vector<double> v;
  auto pos = line.find('[');
  if (pos == std::string::npos) return v;
  const char* p = line.c_str() + pos + 1;
  while (*p != '\0' && *p != ']') {
    char* end = nullptr;
    const double x = std::strtod(p, &end);
    if (end == p) break;
    v.push_back(x);
    p = end;
    while (*p == ',' || *p == ' ') ++p;
  }
  return v;
}

std::string sparkline(const std::vector<double>& v) {
  static const char kLevels[] = " .:-=+*#%@";
  double mx = 0;
  for (double x : v) mx = std::max(mx, x);
  std::string s;
  for (double x : v) {
    const int i =
        mx > 0 ? static_cast<int>(x / mx * 9.0 + 0.5) : 0;  // 0..9
    s += kLevels[std::clamp(i, 0, 9)];
  }
  return s;
}

void render_series(const std::string& label, const std::vector<double>& v,
                   size_t width) {
  double mx = 0;
  for (double x : v) mx = std::max(mx, x);
  std::cout << "  " << label << std::string(width - label.size(), ' ')
            << " |" << sparkline(v) << "|  max " << mx << "\n";
}

int render_timeline(const std::string& path) {
  using dqme::Time;
  std::ifstream f(path);
  if (!f) {
    std::cerr << "dqme_trace: cannot read " << path << "\n";
    return 2;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(f, line);) lines.push_back(line);

  // Anchor on the timeline header line (raw file or bench "timeline" key).
  size_t start = lines.size();
  for (size_t i = 0; i < lines.size(); ++i)
    if (lines[i].find("\"origin\":") != std::string::npos) {
      start = i;
      break;
    }
  if (start == lines.size()) {
    std::cerr << "dqme_trace: no timeline in " << path
              << " (missing \"origin\" key — was the bench run with a "
                 "timeline_window?)\n";
    return 1;
  }
  const auto origin = static_cast<Time>(field_num(lines[start], "origin", 0));
  const auto window = static_cast<Time>(field_num(lines[start], "window", 0));
  const auto windows = static_cast<size_t>(
      field_num(lines[start], "windows", 0));
  std::cout << "timeline: origin=" << origin << " window=" << window
            << " windows=" << windows << "  (" << path << ")\n";

  // Collect (section-qualified label, values) pairs, then markers.
  struct Series {
    std::string label;
    std::vector<double> vals;
  };
  std::vector<Series> series;
  struct Marker {
    Time at;
    std::string label;
  };
  std::vector<Marker> markers;
  enum class Sec { kNone, kCounters, kGauges, kSketches } sec = Sec::kNone;
  std::string sketch;  // current sketch name inside the sketches section
  for (size_t i = start; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.find("\"counters\": {") != std::string::npos) {
      sec = Sec::kCounters;
      continue;
    }
    if (line.find("\"gauges\": {") != std::string::npos) {
      sec = Sec::kGauges;
      continue;
    }
    if (line.find("\"sketches\": {") != std::string::npos) {
      sec = Sec::kSketches;
      continue;
    }
    if (line.find("\"markers\": [") != std::string::npos) {
      // Single line of {"at": T, "label": "..."} objects.
      for (auto pos = line.find('{'); pos != std::string::npos;
           pos = line.find('{', pos + 1)) {
        const auto end = line.find('}', pos);
        if (end == std::string::npos) break;
        const std::string obj = line.substr(pos, end - pos + 1);
        const auto lab = obj.find("\"label\":");
        if (lab == std::string::npos) continue;
        markers.push_back(
            {static_cast<Time>(field_num(obj, "at", 0)),
             first_quoted(obj.substr(lab + 8))});
        pos = end;
      }
      break;  // markers close the timeline object
    }
    const auto first_char = line.find_first_not_of(' ');
    if (first_char == std::string::npos || line[first_char] != '"') continue;
    const std::string name = first_quoted(line);
    if (name.empty()) continue;
    switch (sec) {
      case Sec::kCounters:
      case Sec::kGauges:
        series.push_back({name, parse_array(line)});
        break;
      case Sec::kSketches:
        if (line.find(": {") != std::string::npos) {
          sketch = name;  // header line: "waiting": {"lo": .., ..
        } else if (name != "lo" && name != "buckets") {
          series.push_back({sketch + "." + name, parse_array(line)});
        }
        break;
      case Sec::kNone:
        break;
    }
  }

  size_t width = 0;
  for (const Series& s : series) width = std::max(width, s.label.size());
  std::cout << "\n";
  for (const Series& s : series) render_series(s.label, s.vals, width);
  if (!markers.empty()) {
    std::cout << "\nmarkers:\n";
    for (const Marker& m : markers) {
      const size_t w =
          window > 0 && m.at > origin
              ? static_cast<size_t>((m.at - origin) / window)
              : 0;
      std::cout << "  w" << w << "  @" << m.at << "  " << m.label << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dqme;

  std::vector<std::string> positional;
  bool json = false;
  std::string json_path;  // empty = stdout
  SpanId only_span = kNoSpan;
  LockId only_lock = kNoLock;
  LockId num_locks = 1;
  bool crit = false;
  std::string timeline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a == "--json") {
      json = true;
    } else if (a.rfind("--json=", 0) == 0) {
      json = true;
      json_path = a.substr(7);
    } else if (a.rfind("--span=", 0) == 0) {
      only_span = obs::parse_span(a.substr(7));
      if (only_span == kNoSpan) {
        std::cerr << "dqme_trace: bad span '" << a.substr(7)
                  << "' (expected SITE:SEQ or a packed id)\n";
        return 2;
      }
    } else if (a.rfind("--lock=", 0) == 0) {
      only_lock = static_cast<LockId>(std::atoll(a.substr(7).c_str()));
      if (only_lock < 0) {
        std::cerr << "dqme_trace: bad lock id '" << a.substr(7) << "'\n";
        return 2;
      }
    } else if (a.rfind("--locks=", 0) == 0) {
      num_locks = static_cast<LockId>(std::atoll(a.substr(8).c_str()));
      if (num_locks < 1) {
        std::cerr << "dqme_trace: --locks needs a positive count\n";
        return 2;
      }
    } else if (a == "--crit") {
      crit = true;
    } else if (a.rfind("--timeline=", 0) == 0) {
      timeline_path = a.substr(11);
    } else if (a.rfind("--", 0) == 0) {
      std::cerr << "dqme_trace: unknown flag '" << a << "'\n";
      usage();
      return 2;
    } else {
      positional.push_back(a);
    }
  }
  if (!timeline_path.empty()) return render_timeline(timeline_path);
  if (positional.size() > 3) {
    usage();
    return 2;
  }
  if (only_lock != kNoLock && only_lock >= num_locks) {
    std::cerr << "dqme_trace: --lock=" << only_lock << " out of range "
              << "(run has " << num_locks << " lock"
              << (num_locks == 1 ? "" : "s") << "; raise --locks)\n";
    return 2;
  }
  const int n = !positional.empty() ? std::atoi(positional[0].c_str()) : 4;
  const uint64_t num_cs =
      positional.size() > 1 ? std::strtoull(positional[1].c_str(), nullptr, 10)
                            : 6;
  const uint64_t seed =
      positional.size() > 2 ? std::strtoull(positional[2].c_str(), nullptr, 10)
                            : 1;
  if (n < 2) {
    std::cerr << "N must be >= 2\n";
    return 2;
  }

  sim::Simulator sim;
  net::Network net(sim, n, std::make_unique<net::ConstantDelay>(1000), seed);
  net::TraceRecorder trace(net);
  obs::SpanRecorder spans(net);
  auto quorums = quorum::make_quorum_system("grid", n);

  std::vector<std::unique_ptr<core::CaoSinghalSite>> sites;
  std::vector<mutex::MutexSite*> raw;
  core::CaoSinghalSite::Options site_opts;
  site_opts.num_locks = num_locks;
  for (SiteId i = 0; i < n; ++i) {
    sites.push_back(
        std::make_unique<core::CaoSinghalSite>(i, net, *quorums, site_opts));
    net.attach(i, sites.back().get());
    spans.attach(*sites.back());
    raw.push_back(sites.back().get());
  }

  // Annotate CS entries/exits inline with the message flow.
  struct Annotation {
    Time at;
    LockId lock;
    std::string what;
  };
  std::vector<Annotation> marks;

  harness::Workload::Config wc;
  wc.mode = harness::Workload::Config::Mode::kClosed;
  wc.cs_duration = 300;
  wc.max_cs_per_site = (num_cs + static_cast<uint64_t>(n) - 1) /
                       static_cast<uint64_t>(n);
  wc.seed = seed;
  wc.num_locks = num_locks;
  harness::Workload wl(sim, raw, wc, nullptr);
  for (auto* s : raw) {
    auto inner = s->on_enter;
    s->on_enter = [&, inner, s](SiteId id, LockId lock) {
      std::string what =
          "site " + std::to_string(id) + " ENTERS the critical section";
      if (num_locks > 1) what += " [lock " + std::to_string(lock) + "]";
      what += " [span " + obs::format_span(s->active_span(lock)) + "]";
      marks.push_back({sim.now(), lock, std::move(what)});
      inner(id, lock);
    };
  }
  wl.start();
  sim.run();

  // --crit: pick the request to highlight — --span's path when given, the
  // slowest otherwise — render its delay budget, and collect the wire-hop
  // event indices the Chrome export tags with "crit": 1.
  std::vector<int32_t> crit_events;
  if (crit) {
    const auto paths = obs::extract_critical_paths(spans.events());
    const obs::CritPath* pick = nullptr;
    for (const obs::CritPath& p : paths) {
      if (only_span != kNoSpan && p.span != only_span) continue;
      if (only_lock != kNoLock && p.lock != only_lock) continue;
      if (!pick || p.waiting() > pick->waiting()) pick = &p;
    }
    if (!pick) {
      std::cerr << "dqme_trace: --crit found no completed request"
                << (only_span != kNoSpan ? " matching --span" : "") << "\n";
      return 1;
    }
    // Keep stdout clean when the Chrome JSON itself goes there.
    std::ostream& ro = json && json_path.empty() ? std::cerr : std::cout;
    ro << "critical path ("
       << (only_span != kNoSpan ? "requested span" : "slowest request")
       << "):\n";
    obs::render_crit_path(ro, *pick, 1000);
    for (const obs::CritSegment& s : pick->segments)
      if (s.event >= 0 && (s.bucket == obs::CritBucket::kWire ||
                           s.bucket == obs::CritBucket::kProxy))
        crit_events.push_back(s.event);
  }

  if (json) {
    obs::ChromeTraceData data;
    data.n_sites = n;
    data.label = "dqme_trace cao-singhal N=" + std::to_string(n) +
                 " seed=" + std::to_string(seed);
    data.messages = trace.events();
    data.span_events = spans.events();
    data.only_span = only_span;
    data.only_lock = only_lock;
    data.crit_events = crit_events;
    if (json_path.empty()) {
      obs::write_chrome_trace(std::cout, data);
    } else {
      std::ofstream f(json_path);
      if (!f) {
        std::cerr << "cannot write " << json_path << "\n";
        return 2;
      }
      obs::write_chrome_trace(f, data);
      std::cout << "[trace] wrote " << json_path << " ("
                << data.messages.size() << " messages, "
                << data.span_events.size() << " span events)\n";
    }
    return 0;
  }

  std::cout << "Message timeline — cao-singhal, N=" << n
            << ", grid quorums, T=1000 (constant)\n"
            << "q(i) = quorum of site i:\n";
  for (SiteId i = 0; i < n; ++i) {
    std::cout << "  q(" << i << ") = { ";
    for (SiteId s : sites[static_cast<size_t>(i)]->req_set())
      std::cout << s << ' ';
    std::cout << "}\n";
  }
  if (num_locks > 1)
    std::cout << "(" << num_locks << " independent locks, LockId tagged "
              << "per line)\n";
  if (only_span != kNoSpan)
    std::cout << "(showing only span " << obs::format_span(only_span)
              << ")\n";
  if (only_lock != kNoLock)
    std::cout << "(showing only lock " << only_lock << ")\n";
  std::cout << '\n';

  size_t shown = 0;
  size_t next_mark = 0;
  const auto keep_mark = [&](const Annotation& m) {
    return only_lock == kNoLock || m.lock == only_lock;
  };
  for (const net::TraceEvent& e : trace.events()) {
    while (next_mark < marks.size() && marks[next_mark].at <= e.at) {
      if (keep_mark(marks[next_mark]))
        std::cout << "           >>> " << marks[next_mark].what << '\n';
      ++next_mark;
    }
    if (only_span != kNoSpan && e.msg.span != only_span) continue;
    if (only_lock != kNoLock && e.lock != only_lock) continue;
    std::cout.width(10);
    std::cout << e.at << "  " << e.msg;
    if (num_locks > 1) std::cout << "  [lock " << e.lock << "]";
    std::cout << "  [span " << obs::format_span(e.msg.span) << "]\n";
    ++shown;
  }
  while (next_mark < marks.size()) {
    if (keep_mark(marks[next_mark]))
      std::cout << "           >>> " << marks[next_mark].what << '\n';
    ++next_mark;
  }
  std::cout << "\n" << marks.size() << " CS executions, " << shown
            << " control messages shown (" << trace.events().size()
            << " recorded).\n";
  return 0;
}
