// dqme_trace — print the full message timeline of a small scenario.
//
// Runs a handful of sites under brief contention and dumps every control
// message with its delivery time: the fastest way to *see* the paper's
// §3 mechanism (request -> transfer -> forwarded reply -> parameterized
// release) in action. Every message line now carries the causal span
// ("site:seq") of the request it works toward; --span narrows the timeline
// to one request's story, and --json exports the same run as Chrome
// trace-event JSON for chrome://tracing / ui.perfetto.dev.
//
// usage: dqme_trace [N] [num_cs] [seed] [--span=SITE:SEQ] [--json[=PATH]]
//   (defaults: 4 sites, 6 CS, seed 1; --json with no PATH writes stdout)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/cao_singhal.h"
#include "harness/workload.h"
#include "net/trace.h"
#include "obs/chrome_trace.h"
#include "quorum/factory.h"

namespace {

void usage() {
  std::cerr << "usage: dqme_trace [N] [num_cs] [seed] [--span=SITE:SEQ] "
               "[--json[=PATH]]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dqme;

  std::vector<std::string> positional;
  bool json = false;
  std::string json_path;  // empty = stdout
  SpanId only_span = kNoSpan;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a == "--json") {
      json = true;
    } else if (a.rfind("--json=", 0) == 0) {
      json = true;
      json_path = a.substr(7);
    } else if (a.rfind("--span=", 0) == 0) {
      only_span = obs::parse_span(a.substr(7));
      if (only_span == kNoSpan) {
        std::cerr << "dqme_trace: bad span '" << a.substr(7)
                  << "' (expected SITE:SEQ or a packed id)\n";
        return 2;
      }
    } else if (a.rfind("--", 0) == 0) {
      std::cerr << "dqme_trace: unknown flag '" << a << "'\n";
      usage();
      return 2;
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() > 3) {
    usage();
    return 2;
  }
  const int n = !positional.empty() ? std::atoi(positional[0].c_str()) : 4;
  const uint64_t num_cs =
      positional.size() > 1 ? std::strtoull(positional[1].c_str(), nullptr, 10)
                            : 6;
  const uint64_t seed =
      positional.size() > 2 ? std::strtoull(positional[2].c_str(), nullptr, 10)
                            : 1;
  if (n < 2) {
    std::cerr << "N must be >= 2\n";
    return 2;
  }

  sim::Simulator sim;
  net::Network net(sim, n, std::make_unique<net::ConstantDelay>(1000), seed);
  net::TraceRecorder trace(net);
  obs::SpanRecorder spans(net);
  auto quorums = quorum::make_quorum_system("grid", n);

  std::vector<std::unique_ptr<core::CaoSinghalSite>> sites;
  std::vector<mutex::MutexSite*> raw;
  for (SiteId i = 0; i < n; ++i) {
    sites.push_back(std::make_unique<core::CaoSinghalSite>(i, net, *quorums));
    net.attach(i, sites.back().get());
    spans.attach(*sites.back());
    raw.push_back(sites.back().get());
  }

  // Annotate CS entries/exits inline with the message flow.
  struct Annotation {
    Time at;
    std::string what;
  };
  std::vector<Annotation> marks;

  harness::Workload::Config wc;
  wc.mode = harness::Workload::Config::Mode::kClosed;
  wc.cs_duration = 300;
  wc.max_cs_per_site = (num_cs + static_cast<uint64_t>(n) - 1) /
                       static_cast<uint64_t>(n);
  wc.seed = seed;
  harness::Workload wl(sim, raw, wc, nullptr);
  for (auto* s : raw) {
    auto inner = s->on_enter;
    s->on_enter = [&, inner, s](SiteId id, LockId lock) {
      marks.push_back({sim.now(), "site " + std::to_string(id) +
                                      " ENTERS the critical section [span " +
                                      obs::format_span(s->active_span()) +
                                      "]"});
      inner(id, lock);
    };
  }
  wl.start();
  sim.run();

  if (json) {
    obs::ChromeTraceData data;
    data.n_sites = n;
    data.label = "dqme_trace cao-singhal N=" + std::to_string(n) +
                 " seed=" + std::to_string(seed);
    data.messages = trace.events();
    data.span_events = spans.events();
    data.only_span = only_span;
    if (json_path.empty()) {
      obs::write_chrome_trace(std::cout, data);
    } else {
      std::ofstream f(json_path);
      if (!f) {
        std::cerr << "cannot write " << json_path << "\n";
        return 2;
      }
      obs::write_chrome_trace(f, data);
      std::cout << "[trace] wrote " << json_path << " ("
                << data.messages.size() << " messages, "
                << data.span_events.size() << " span events)\n";
    }
    return 0;
  }

  std::cout << "Message timeline — cao-singhal, N=" << n
            << ", grid quorums, T=1000 (constant)\n"
            << "q(i) = quorum of site i:\n";
  for (SiteId i = 0; i < n; ++i) {
    std::cout << "  q(" << i << ") = { ";
    for (SiteId s : sites[static_cast<size_t>(i)]->req_set())
      std::cout << s << ' ';
    std::cout << "}\n";
  }
  if (only_span != kNoSpan)
    std::cout << "(showing only span " << obs::format_span(only_span)
              << ")\n";
  std::cout << '\n';

  size_t shown = 0;
  size_t next_mark = 0;
  for (const net::TraceEvent& e : trace.events()) {
    while (next_mark < marks.size() && marks[next_mark].at <= e.at) {
      std::cout << "           >>> " << marks[next_mark].what << '\n';
      ++next_mark;
    }
    if (only_span != kNoSpan && e.msg.span != only_span) continue;
    std::cout.width(10);
    std::cout << e.at << "  " << e.msg << "  [span "
              << obs::format_span(e.msg.span) << "]\n";
    ++shown;
  }
  while (next_mark < marks.size()) {
    std::cout << "           >>> " << marks[next_mark].what << '\n';
    ++next_mark;
  }
  std::cout << "\n" << marks.size() << " CS executions, " << shown
            << " control messages shown (" << trace.events().size()
            << " recorded).\n";
  return 0;
}
