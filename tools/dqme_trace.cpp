// dqme_trace — print the full message timeline of a small scenario.
//
// Runs a handful of sites under brief contention and dumps every control
// message with its delivery time: the fastest way to *see* the paper's
// §3 mechanism (request -> transfer -> forwarded reply -> parameterized
// release) in action.
//
// usage: dqme_trace [N] [num_cs] [seed]   (defaults: 4 sites, 6 CS, seed 1)
#include <cstdlib>
#include <iostream>

#include "core/cao_singhal.h"
#include "harness/workload.h"
#include "net/trace.h"
#include "quorum/factory.h"

int main(int argc, char** argv) {
  using namespace dqme;
  const int n = argc > 1 ? std::atoi(argv[1]) : 4;
  const uint64_t num_cs = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
  if (n < 2) {
    std::cerr << "N must be >= 2\n";
    return 2;
  }

  sim::Simulator sim;
  net::Network net(sim, n, std::make_unique<net::ConstantDelay>(1000), seed);
  net::TraceRecorder trace(net);
  auto quorums = quorum::make_quorum_system("grid", n);

  std::vector<std::unique_ptr<core::CaoSinghalSite>> sites;
  std::vector<mutex::MutexSite*> raw;
  for (SiteId i = 0; i < n; ++i) {
    sites.push_back(std::make_unique<core::CaoSinghalSite>(i, net, *quorums));
    net.attach(i, sites.back().get());
    raw.push_back(sites.back().get());
  }

  // Annotate CS entries/exits inline with the message flow.
  struct Annotation {
    Time at;
    std::string what;
  };
  std::vector<Annotation> marks;

  harness::Workload::Config wc;
  wc.mode = harness::Workload::Config::Mode::kClosed;
  wc.cs_duration = 300;
  wc.max_cs_per_site = (num_cs + static_cast<uint64_t>(n) - 1) /
                       static_cast<uint64_t>(n);
  wc.seed = seed;
  harness::Workload wl(sim, raw, wc, nullptr);
  for (auto* s : raw) {
    auto inner = s->on_enter;
    s->on_enter = [&, inner](SiteId id) {
      marks.push_back({sim.now(), "site " + std::to_string(id) +
                                      " ENTERS the critical section"});
      inner(id);
    };
  }
  wl.start();
  sim.run();

  std::cout << "Message timeline — cao-singhal, N=" << n
            << ", grid quorums, T=1000 (constant)\n"
            << "q(i) = quorum of site i:\n";
  for (SiteId i = 0; i < n; ++i) {
    std::cout << "  q(" << i << ") = { ";
    for (SiteId s : sites[static_cast<size_t>(i)]->req_set())
      std::cout << s << ' ';
    std::cout << "}\n";
  }
  std::cout << '\n';

  size_t next_mark = 0;
  for (const net::TraceEvent& e : trace.events()) {
    while (next_mark < marks.size() && marks[next_mark].at <= e.at) {
      std::cout << "           >>> " << marks[next_mark].what << '\n';
      ++next_mark;
    }
    std::cout.width(10);
    std::cout << e.at << "  " << e.msg << '\n';
  }
  while (next_mark < marks.size()) {
    std::cout << "           >>> " << marks[next_mark].what << '\n';
    ++next_mark;
  }
  std::cout << "\n" << marks.size() << " CS executions, "
            << trace.events().size() << " control messages.\n";
  return 0;
}
