// dqme_sim — command-line experiment runner.
//
// Runs any algorithm/quorum/load combination the library supports and
// prints the full metric set; the programmable counterpart to the fixed
// E1..E9 benches. Exits non-zero on a safety or liveness failure, so it
// can sit inside shell loops and CI jobs.
//
// Examples:
//   dqme_sim --algo cao-singhal --n 49 --quorum grid
//   dqme_sim --algo maekawa --n 13 --quorum fpp --load open --rate 0.5
//   dqme_sim --algo cao-singhal --n 15 --quorum tree --ft
//            --crash 500000:0 --crash 900000:7   (one line)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"
#include "obs/chrome_trace.h"
#include "verify/explorer.h"

namespace {

using namespace dqme;

void usage(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [options]\n"
      << "  --algo NAME      lamport | ricart-agrawala | maekawa | raymond\n"
      << "                   | suzuki-kasami | cao-singhal |"
      << " cao-singhal-noproxy\n"
      << "  --n N            number of sites (default 25)\n"
      << "  --quorum KIND    grid | fpp | tree | majority | hqc |\n"
      << "                   gridset[:G] | rst[:G] | singleton | all\n"
      << "  --t TICKS        mean message delay T (default 1000)\n"
      << "  --delay KIND     constant | uniform | exponential\n"
      << "  --load MODE      closed (saturation, default) | open\n"
      << "  --rate R         open loop: offered load as a fraction of\n"
      << "                   1/(2T+E) aggregate capacity (default 0.5)\n"
      << "  --cs TICKS       CS duration E (default 100)\n"
      << "  --exp-cs         exponential CS durations\n"
      << "  --think TICKS    closed loop think time (default 0)\n"
      << "  --warmup TICKS   (default 200000)\n"
      << "  --measure TICKS  (default 2000000)\n"
      << "  --seed S         (default 1)\n"
      << "  --locks M        lock-table size (default 1; dense LockIds\n"
      << "                   0..M-1, independent critical sections)\n"
      << "  --zipf S         open loop, --locks > 1: lock-popularity skew\n"
      << "                   (0 = uniform, default)\n"
      << "  --lock-piggyback W  staged messages for different locks to the\n"
      << "                   same site within W ticks share one wire flight\n"
      << "                   (default off)\n"
      << "  --ft             enable the §6 fault-tolerance layer\n"
      << "  --crash T:SITE   crash SITE at time T (repeatable)\n"
      << "  --no-piggyback   disable piggybacking (ablation)\n"
      << "  --audit          run the per-arbiter permission auditor\n"
      << "                   (quorum algorithms, no crashes)\n"
      << "  --trace-out FILE record the run and write Chrome trace-event\n"
      << "                   JSON (chrome://tracing / ui.perfetto.dev)\n"
      << "  --replay-schedule FILE  replay a dqme_explore schedule (its\n"
      << "                   config rides in the file; other options except\n"
      << "                   --trace-out are ignored); exits 1 when the\n"
      << "                   replay reproduces a violation\n";
}

bool parse_args(int argc, char** argv, harness::ExperimentConfig& cfg,
                double& rate, std::string& trace_out,
                std::string& replay_schedule) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else if (a == "--algo") {
      cfg.algo = mutex::algo_from_string(next());
    } else if (a == "--n") {
      cfg.n = std::atoi(next());
    } else if (a == "--quorum") {
      cfg.quorum = next();
    } else if (a == "--t") {
      cfg.mean_delay = std::atoll(next());
    } else if (a == "--delay") {
      const std::string kind = next();
      if (kind == "constant")
        cfg.delay_kind = harness::ExperimentConfig::DelayKind::kConstant;
      else if (kind == "uniform")
        cfg.delay_kind = harness::ExperimentConfig::DelayKind::kUniform;
      else if (kind == "exponential")
        cfg.delay_kind = harness::ExperimentConfig::DelayKind::kExponential;
      else {
        std::cerr << "unknown delay kind: " << kind << "\n";
        return false;
      }
    } else if (a == "--load") {
      const std::string mode = next();
      if (mode == "closed")
        cfg.workload.mode = harness::Workload::Config::Mode::kClosed;
      else if (mode == "open")
        cfg.workload.mode = harness::Workload::Config::Mode::kOpen;
      else {
        std::cerr << "unknown load mode: " << mode << "\n";
        return false;
      }
    } else if (a == "--rate") {
      rate = std::atof(next());
    } else if (a == "--cs") {
      cfg.workload.cs_duration = std::atoll(next());
    } else if (a == "--exp-cs") {
      cfg.workload.exponential_cs = true;
    } else if (a == "--think") {
      cfg.workload.think_time = std::atoll(next());
    } else if (a == "--warmup") {
      cfg.warmup = std::atoll(next());
    } else if (a == "--measure") {
      cfg.measure = std::atoll(next());
    } else if (a == "--seed") {
      cfg.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (a == "--locks") {
      cfg.options.num_locks = std::atoi(next());
    } else if (a == "--zipf") {
      cfg.workload.zipf_skew = std::atof(next());
    } else if (a == "--lock-piggyback") {
      cfg.lock_piggyback_window = std::atoll(next());
    } else if (a == "--ft") {
      cfg.options.fault_tolerant = true;
    } else if (a == "--no-piggyback") {
      cfg.options.piggyback = false;
    } else if (a == "--audit") {
      cfg.audit_permissions = true;
    } else if (a == "--replay-schedule") {
      replay_schedule = next();
    } else if (a.rfind("--replay-schedule=", 0) == 0) {
      replay_schedule = a.substr(std::string("--replay-schedule=").size());
      if (replay_schedule.empty()) return false;
    } else if (a == "--trace-out") {
      trace_out = next();
    } else if (a.rfind("--trace-out=", 0) == 0) {
      trace_out = a.substr(std::string("--trace-out=").size());
      if (trace_out.empty()) return false;
    } else if (a == "--crash") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--crash expects T:SITE\n";
        return false;
      }
      cfg.crashes.push_back(
          {std::atoll(spec.substr(0, colon).c_str()),
           std::atoi(spec.substr(colon + 1).c_str())});
    } else {
      std::cerr << "unknown option: " << a << "\n";
      return false;
    }
  }
  return true;
}

// Replays a schedule emitted by dqme_explore --repro-out: rebuilds the
// World the schedule's embedded config describes, re-applies every action,
// and reports what the invariant checker flags. Deterministic, so the
// explorer's counterexample reproduces exactly.
int replay_schedule_main(const std::string& path,
                         const std::string& trace_out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 2;
  }
  verify::WorldConfig cfg;
  std::vector<verify::Action> actions;
  std::string err;
  if (!verify::read_schedule(in, cfg, actions, &err)) {
    std::cerr << path << ": " << err << "\n";
    return 2;
  }
  const bool capture = !trace_out.empty();
  auto world = verify::replay_schedule(cfg, actions, capture);

  std::cout << "dqme_sim --replay-schedule: " << mutex::to_string(cfg.algo)
            << "  N=" << cfg.n << "  quorum=" << cfg.quorum
            << "  cs/site=" << cfg.cs_per_site;
  if (cfg.mutation != verify::Mutation::kNone)
    std::cout << "  mutation=" << verify::to_string(cfg.mutation);
  std::cout << "\n  " << actions.size() << " actions, sealed="
            << (world->sealed() ? "yes" : "no") << ", violations="
            << world->violations() << "\n";
  for (const std::string& r : world->reports()) std::cout << "  " << r
                                                          << "\n";
  if (capture) {
    obs::ChromeTraceData data;
    data.n_sites = cfg.n;
    data.label = "replay of " + path;
    data.messages = world->trace_recorder()->events();
    data.span_events = world->span_recorder()->events();
    std::ofstream f(trace_out);
    if (!f) {
      std::cerr << "cannot write " << trace_out << "\n";
      return 2;
    }
    obs::write_chrome_trace(f, data);
    std::cout << "[trace] wrote " << trace_out << " ("
              << data.messages.size() << " messages)\n";
  }
  std::cout << (world->violations() == 0
                    ? "OK: schedule replays clean.\n"
                    : "REPRODUCED: schedule violates the invariants.\n");
  return world->violations() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) try {
  harness::ExperimentConfig cfg;
  double rate = 0.5;
  std::string trace_out;
  std::string replay_schedule;
  if (!parse_args(argc, argv, cfg, rate, trace_out, replay_schedule)) {
    usage(argv[0]);
    return 2;
  }
  if (!replay_schedule.empty())
    return replay_schedule_main(replay_schedule, trace_out);
  obs::RunCapture cap;
  if (!trace_out.empty()) cfg.capture = &cap;
  if (cfg.workload.mode == harness::Workload::Config::Mode::kOpen) {
    const double capacity =
        1.0 / static_cast<double>(2 * cfg.mean_delay +
                                  cfg.workload.cs_duration);
    cfg.workload.arrival_rate = rate * capacity / cfg.n;
  }

  const harness::ExperimentResult r = harness::run_experiment(cfg);
  const double t = static_cast<double>(cfg.mean_delay);

  std::cout << "dqme_sim: " << mutex::to_string(cfg.algo) << "  N=" << cfg.n;
  if (mutex::algo_uses_quorum(cfg.algo))
    std::cout << "  quorum=" << cfg.quorum << "  K=" << r.mean_quorum_size;
  std::cout << "  T=" << cfg.mean_delay << "  seed=" << cfg.seed;
  if (cfg.options.num_locks > 1)
    std::cout << "  locks=" << cfg.options.num_locks
              << "  zipf=" << cfg.workload.zipf_skew;
  std::cout << "\n\n";

  harness::Table out({"metric", "value"});
  using harness::Table;
  out.add_row({"CS completed (window)", Table::integer(r.summary.completed)});
  out.add_row({"wire messages / CS",
               Table::num(r.summary.wire_msgs_per_cs, 2)});
  out.add_row({"control messages / CS",
               Table::num(r.summary.ctrl_msgs_per_cs, 2)});
  out.add_row({"sync delay / T (contended)",
               Table::num(r.sync_delay_in_t, 3)});
  out.add_row({"throughput (CS per T)",
               Table::num(r.summary.throughput * t, 3)});
  out.add_row({"mean waiting / T",
               Table::num(r.summary.waiting_mean / t, 2)});
  out.add_row({"max waiting / T", Table::num(r.summary.waiting_max / t, 2)});
  out.add_row({"mean response / T",
               Table::num(r.summary.response_mean / t, 2)});
  out.add_row({"fairness (Jain)", Table::num(r.summary.fairness_jain, 3)});
  out.add_row({"ME violations", Table::integer(r.summary.violations)});
  out.add_row({"demands issued/completed/aborted",
               Table::integer(r.demands_issued) + "/" +
                   Table::integer(r.demands_completed) + "/" +
                   Table::integer(r.demands_aborted)});
  out.add_row({"drained clean", r.drained_clean ? "yes" : "NO"});
  out.add_row({"stale drops", Table::integer(r.stale_drops)});
  if (cfg.audit_permissions)
    out.add_row({"permission audit (grants / violations)",
                 Table::integer(r.permission_grants_audited) + " / " +
                     Table::integer(r.permission_violations)});
  if (cfg.algo == mutex::Algo::kCaoSinghal ||
      cfg.algo == mutex::Algo::kCaoSinghalNoProxy) {
    out.add_row({"replies forwarded / direct",
                 Table::integer(r.protocol_stats.replies_forwarded) + " / " +
                     Table::integer(r.protocol_stats.replies_direct)});
    out.add_row({"yields", Table::integer(r.protocol_stats.yields_sent)});
    out.add_row({"§6 recoveries",
                 Table::integer(r.protocol_stats.recoveries)});
  }
  out.print(std::cout);

  if (!trace_out.empty()) {
    obs::ChromeTraceData data;
    data.n_sites = cap.n_sites;
    data.label = cap.label;
    data.messages = std::move(cap.messages);
    data.span_events = std::move(cap.span_events);
    std::ofstream f(trace_out);
    if (!f) {
      std::cerr << "cannot write " << trace_out << "\n";
      return 2;
    }
    obs::write_chrome_trace(f, data);
    std::cout << "\n[trace] wrote " << trace_out << " ("
              << data.messages.size() << " messages, "
              << data.span_events.size() << " span events)\n";
  }

  const bool ok = r.summary.violations == 0 && r.drained_clean &&
                  r.permission_violations == 0;
  std::cout << (ok ? "\nOK: safe and live.\n"
                   : "\nFAILED: safety or liveness violated.\n");
  return ok ? 0 : 1;
} catch (const dqme::CheckError& e) {
  std::cerr << "configuration error: " << e.what() << "\n";
  return 2;
}
