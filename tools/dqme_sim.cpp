// dqme_sim — command-line experiment runner.
//
// Runs any algorithm/quorum/load combination the library supports and
// prints the full metric set; the programmable counterpart to the fixed
// E1..E9 benches. Exits non-zero on a safety or liveness failure, so it
// can sit inside shell loops and CI jobs.
//
// Examples:
//   dqme_sim --algo cao-singhal --n 49 --quorum grid
//   dqme_sim --algo maekawa --n 13 --quorum fpp --load open --rate 0.5
//   dqme_sim --algo cao-singhal --n 15 --quorum tree --ft
//            --crash 500000:0 --crash 900000:7   (one line)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/table.h"
#include "obs/chrome_trace.h"
#include "rt/driver.h"
#include "verify/explorer.h"

namespace {

using namespace dqme;

void usage(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [options]\n"
      << "  --backend B      sim (discrete-event, default) | rt (real\n"
      << "                   threads: one pump thread per site on lock-free\n"
      << "                   SPSC rings; wall-clock numbers)\n"
      << "  --algo NAME      lamport | ricart-agrawala | maekawa | raymond\n"
      << "                   | suzuki-kasami | cao-singhal |"
      << " cao-singhal-noproxy\n"
      << "  --n N            number of sites (default 25)\n"
      << "  --quorum KIND    grid | fpp | tree | majority | hqc |\n"
      << "                   gridset[:G] | rst[:G] | singleton | all\n"
      << "  --t TICKS        mean message delay T (default 1000)\n"
      << "  --delay KIND     constant | uniform | exponential\n"
      << "  --load MODE      closed (saturation, default) | open\n"
      << "  --rate R         open loop: offered load as a fraction of\n"
      << "                   1/(2T+E) aggregate capacity (default 0.5)\n"
      << "  --cs TICKS       CS duration E (default 100)\n"
      << "  --exp-cs         exponential CS durations\n"
      << "  --think TICKS    closed loop think time (default 0)\n"
      << "  --warmup TICKS   (default 200000)\n"
      << "  --measure TICKS  (default 2000000)\n"
      << "  --seed S         (default 1)\n"
      << "  --locks M        lock-table size (default 1; dense LockIds\n"
      << "                   0..M-1, independent critical sections)\n"
      << "  --zipf S         open loop, --locks > 1: lock-popularity skew\n"
      << "                   (0 = uniform, default)\n"
      << "  --lock-piggyback W  staged messages for different locks to the\n"
      << "                   same site within W ticks share one wire flight\n"
      << "                   (default off)\n"
      << "  --ft             enable the §6 fault-tolerance layer\n"
      << "  --crash T:SITE   crash SITE at time T (repeatable)\n"
      << "  --no-piggyback   disable piggybacking (ablation)\n"
      << "  --audit          run the per-arbiter permission auditor\n"
      << "                   (quorum algorithms, no crashes)\n"
      << "  --trace-out FILE record the run and write Chrome trace-event\n"
      << "                   JSON (chrome://tracing / ui.perfetto.dev)\n"
      << "  --replay-schedule FILE  replay a dqme_explore schedule (its\n"
      << "                   config rides in the file; other options except\n"
      << "                   --trace-out are ignored); exits 1 when the\n"
      << "                   replay reproduces a violation\n"
      << "rt backend only (--backend rt):\n"
      << "  --entries N      aggregate CS entries to perform (default 5000)\n"
      << "  --max-seconds S  soft wall-clock stop (default 30)\n"
      << "  --outstanding K  per-site pipeline depth, --locks > 1 only\n"
      << "                   (default 8)\n"
      << "  --wire-delay-us D  emulated wire latency in microseconds — the\n"
      << "                   paper's T on real threads (default 100; 0 =\n"
      << "                   raw ring speed)\n"
      << "  --no-check       skip the safety probe and the merged\n"
      << "                   invariant-checker replay\n"
      << "(simulator-shape flags — --t, --delay, --load, --warmup, ... —\n"
      << " are rejected under --backend rt rather than silently ignored)\n";
}

// --backend rt: the real-threads free-run driver (rt::run_free) behind the
// same CLI. Only the flags that make sense for a wall-clock run are
// accepted; simulator-shape flags get a pointed error instead of being
// silently ignored, so a copy-pasted sim command line cannot masquerade as
// an rt measurement.
int rt_backend_main(int argc, char** argv) {
  rt::FreeRunConfig cfg;
  cfg.n = 25;
  cfg.target_entries = 5000;
  cfg.wire_delay_us = 100;
  cfg.check = true;
  cfg.quorum = "grid";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (a == "--backend") {
      next();  // already dispatched on it
    } else if (a.rfind("--backend=", 0) == 0) {
      // already dispatched on it
    } else if (a == "--algo") {
      cfg.algo = mutex::algo_from_string(next());
    } else if (a == "--n") {
      cfg.n = std::atoi(next());
    } else if (a == "--quorum") {
      cfg.quorum = next();
    } else if (a == "--locks") {
      cfg.num_locks = std::atoi(next());
    } else if (a == "--ft") {
      cfg.fault_tolerant = true;
    } else if (a == "--seed") {
      cfg.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (a == "--entries") {
      cfg.target_entries = static_cast<uint64_t>(std::atoll(next()));
    } else if (a == "--max-seconds") {
      cfg.max_seconds = std::atof(next());
    } else if (a == "--outstanding") {
      cfg.outstanding = std::atoi(next());
    } else if (a == "--wire-delay-us") {
      cfg.wire_delay_us = static_cast<uint64_t>(std::atoll(next()));
    } else if (a == "--no-check") {
      cfg.check = false;
    } else if (a == "--t" || a == "--delay" || a == "--load" ||
               a == "--rate" || a == "--cs" || a == "--exp-cs" ||
               a == "--think" || a == "--warmup" || a == "--measure" ||
               a == "--zipf" || a == "--lock-piggyback" || a == "--ft-crash" ||
               a == "--crash" || a == "--no-piggyback" || a == "--audit" ||
               a == "--trace-out" || a == "--replay-schedule") {
      std::cerr << a
                << " is simulator-only: the rt backend runs wall-clock with "
                   "real threads (see --wire-delay-us / --entries / "
                   "--max-seconds), so simulated-time shaping does not "
                   "apply\n";
      return 2;
    } else {
      std::cerr << "unknown option: " << a << "\n";
      usage(argv[0]);
      return 2;
    }
  }

  std::cout << "dqme_sim [rt backend]: " << mutex::to_string(cfg.algo)
            << "  N=" << cfg.n << " (pump threads)";
  if (mutex::algo_uses_quorum(cfg.algo))
    std::cout << "  quorum=" << cfg.quorum;
  std::cout << "  locks=" << cfg.num_locks
            << "  wire_delay=" << cfg.wire_delay_us << "us"
            << "  seed=" << cfg.seed << "\n\n";

  const rt::FreeRunResult r = rt::run_free(cfg);

  harness::Table out({"metric", "value"});
  using harness::Table;
  out.add_row({"CS entries", Table::integer(r.cs_entries)});
  out.add_row({"wall seconds", Table::num(r.wall_seconds, 3)});
  out.add_row({"handoffs / sec", Table::num(r.handoffs_per_sec, 1)});
  out.add_row({"wire messages / sec", Table::num(r.wire_msgs_per_sec, 1)});
  out.add_row({"wire messages", Table::integer(r.stats.wire_messages)});
  out.add_row({"delivered messages",
               Table::integer(r.stats.delivered_messages)});
  out.add_row({"ring overflows (spilled)",
               Table::integer(r.stats.spilled_messages)});
  if (cfg.check) {
    out.add_row({"safety probe violations",
                 Table::integer(r.probe_violations)});
    out.add_row({"invariant violations (merged replay)",
                 Table::integer(r.violations)});
  }
  out.print(std::cout);
  for (const std::string& rep : r.reports) std::cout << "  " << rep << "\n";

  std::cout << (r.ok ? "\nOK: safe and live.\n"
                     : "\nFAILED: " +
                           (r.error.empty() ? "violations detected" : r.error) +
                           "\n");
  return r.ok ? 0 : 1;
}

bool parse_args(int argc, char** argv, harness::ExperimentConfig& cfg,
                double& rate, std::string& trace_out,
                std::string& replay_schedule) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else if (a == "--backend") {
      next();  // main() already dispatched on it; value validated there
    } else if (a.rfind("--backend=", 0) == 0) {
      // main() already dispatched on it
    } else if (a == "--algo") {
      cfg.algo = mutex::algo_from_string(next());
    } else if (a == "--n") {
      cfg.n = std::atoi(next());
    } else if (a == "--quorum") {
      cfg.quorum = next();
    } else if (a == "--t") {
      cfg.mean_delay = std::atoll(next());
    } else if (a == "--delay") {
      const std::string kind = next();
      if (kind == "constant")
        cfg.delay_kind = harness::ExperimentConfig::DelayKind::kConstant;
      else if (kind == "uniform")
        cfg.delay_kind = harness::ExperimentConfig::DelayKind::kUniform;
      else if (kind == "exponential")
        cfg.delay_kind = harness::ExperimentConfig::DelayKind::kExponential;
      else {
        std::cerr << "unknown delay kind: " << kind << "\n";
        return false;
      }
    } else if (a == "--load") {
      const std::string mode = next();
      if (mode == "closed")
        cfg.workload.mode = harness::Workload::Config::Mode::kClosed;
      else if (mode == "open")
        cfg.workload.mode = harness::Workload::Config::Mode::kOpen;
      else {
        std::cerr << "unknown load mode: " << mode << "\n";
        return false;
      }
    } else if (a == "--rate") {
      rate = std::atof(next());
    } else if (a == "--cs") {
      cfg.workload.cs_duration = std::atoll(next());
    } else if (a == "--exp-cs") {
      cfg.workload.exponential_cs = true;
    } else if (a == "--think") {
      cfg.workload.think_time = std::atoll(next());
    } else if (a == "--warmup") {
      cfg.warmup = std::atoll(next());
    } else if (a == "--measure") {
      cfg.measure = std::atoll(next());
    } else if (a == "--seed") {
      cfg.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (a == "--locks") {
      cfg.options.num_locks = std::atoi(next());
    } else if (a == "--zipf") {
      cfg.workload.zipf_skew = std::atof(next());
    } else if (a == "--lock-piggyback") {
      cfg.lock_piggyback_window = std::atoll(next());
    } else if (a == "--ft") {
      cfg.options.fault_tolerant = true;
    } else if (a == "--no-piggyback") {
      cfg.options.piggyback = false;
    } else if (a == "--audit") {
      cfg.audit_permissions = true;
    } else if (a == "--replay-schedule") {
      replay_schedule = next();
    } else if (a.rfind("--replay-schedule=", 0) == 0) {
      replay_schedule = a.substr(std::string("--replay-schedule=").size());
      if (replay_schedule.empty()) return false;
    } else if (a == "--trace-out") {
      trace_out = next();
    } else if (a.rfind("--trace-out=", 0) == 0) {
      trace_out = a.substr(std::string("--trace-out=").size());
      if (trace_out.empty()) return false;
    } else if (a == "--crash") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--crash expects T:SITE\n";
        return false;
      }
      cfg.crashes.push_back(
          {std::atoll(spec.substr(0, colon).c_str()),
           std::atoi(spec.substr(colon + 1).c_str())});
    } else {
      std::cerr << "unknown option: " << a << "\n";
      return false;
    }
  }
  return true;
}

// Replays a schedule emitted by dqme_explore --repro-out: rebuilds the
// World the schedule's embedded config describes, re-applies every action,
// and reports what the invariant checker flags. Deterministic, so the
// explorer's counterexample reproduces exactly.
int replay_schedule_main(const std::string& path,
                         const std::string& trace_out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 2;
  }
  verify::WorldConfig cfg;
  std::vector<verify::Action> actions;
  std::string err;
  if (!verify::read_schedule(in, cfg, actions, &err)) {
    std::cerr << path << ": " << err << "\n";
    return 2;
  }
  const bool capture = !trace_out.empty();
  auto world = verify::replay_schedule(cfg, actions, capture);

  std::cout << "dqme_sim --replay-schedule: " << mutex::to_string(cfg.algo)
            << "  N=" << cfg.n << "  quorum=" << cfg.quorum
            << "  cs/site=" << cfg.cs_per_site;
  if (cfg.mutation != verify::Mutation::kNone)
    std::cout << "  mutation=" << verify::to_string(cfg.mutation);
  std::cout << "\n  " << actions.size() << " actions, sealed="
            << (world->sealed() ? "yes" : "no") << ", violations="
            << world->violations() << "\n";
  for (const std::string& r : world->reports()) std::cout << "  " << r
                                                          << "\n";
  if (capture) {
    obs::ChromeTraceData data;
    data.n_sites = cfg.n;
    data.label = "replay of " + path;
    data.messages = world->trace_recorder()->events();
    data.span_events = world->span_recorder()->events();
    std::ofstream f(trace_out);
    if (!f) {
      std::cerr << "cannot write " << trace_out << "\n";
      return 2;
    }
    obs::write_chrome_trace(f, data);
    std::cout << "[trace] wrote " << trace_out << " ("
              << data.messages.size() << " messages)\n";
  }
  std::cout << (world->violations() == 0
                    ? "OK: schedule replays clean.\n"
                    : "REPRODUCED: schedule violates the invariants.\n");
  return world->violations() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) try {
  // Backend dispatch happens before the full parse: the two backends have
  // different flag vocabularies.
  std::string backend = "sim";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--backend" && i + 1 < argc)
      backend = argv[i + 1];
    else if (a.rfind("--backend=", 0) == 0)
      backend = a.substr(std::string("--backend=").size());
  }
  if (backend == "rt") return rt_backend_main(argc, argv);
  if (backend != "sim") {
    std::cerr << "unknown backend: " << backend << " (sim | rt)\n";
    return 2;
  }

  harness::ExperimentConfig cfg;
  double rate = 0.5;
  std::string trace_out;
  std::string replay_schedule;
  if (!parse_args(argc, argv, cfg, rate, trace_out, replay_schedule)) {
    usage(argv[0]);
    return 2;
  }
  if (!replay_schedule.empty())
    return replay_schedule_main(replay_schedule, trace_out);
  obs::RunCapture cap;
  if (!trace_out.empty()) cfg.capture = &cap;
  if (cfg.workload.mode == harness::Workload::Config::Mode::kOpen) {
    const double capacity =
        1.0 / static_cast<double>(2 * cfg.mean_delay +
                                  cfg.workload.cs_duration);
    cfg.workload.arrival_rate = rate * capacity / cfg.n;
  }

  const harness::ExperimentResult r = harness::run_experiment(cfg);
  const double t = static_cast<double>(cfg.mean_delay);

  std::cout << "dqme_sim: " << mutex::to_string(cfg.algo) << "  N=" << cfg.n;
  if (mutex::algo_uses_quorum(cfg.algo))
    std::cout << "  quorum=" << cfg.quorum << "  K=" << r.mean_quorum_size;
  std::cout << "  T=" << cfg.mean_delay << "  seed=" << cfg.seed;
  if (cfg.options.num_locks > 1)
    std::cout << "  locks=" << cfg.options.num_locks
              << "  zipf=" << cfg.workload.zipf_skew;
  std::cout << "\n\n";

  harness::Table out({"metric", "value"});
  using harness::Table;
  out.add_row({"CS completed (window)", Table::integer(r.summary.completed)});
  out.add_row({"wire messages / CS",
               Table::num(r.summary.wire_msgs_per_cs, 2)});
  out.add_row({"control messages / CS",
               Table::num(r.summary.ctrl_msgs_per_cs, 2)});
  out.add_row({"sync delay / T (contended)",
               Table::num(r.sync_delay_in_t, 3)});
  out.add_row({"throughput (CS per T)",
               Table::num(r.summary.throughput * t, 3)});
  out.add_row({"mean waiting / T",
               Table::num(r.summary.waiting_mean / t, 2)});
  out.add_row({"max waiting / T", Table::num(r.summary.waiting_max / t, 2)});
  out.add_row({"mean response / T",
               Table::num(r.summary.response_mean / t, 2)});
  out.add_row({"fairness (Jain)", Table::num(r.summary.fairness_jain, 3)});
  out.add_row({"ME violations", Table::integer(r.summary.violations)});
  out.add_row({"demands issued/completed/aborted",
               Table::integer(r.demands_issued) + "/" +
                   Table::integer(r.demands_completed) + "/" +
                   Table::integer(r.demands_aborted)});
  out.add_row({"drained clean", r.drained_clean ? "yes" : "NO"});
  out.add_row({"stale drops", Table::integer(r.stale_drops)});
  if (cfg.audit_permissions)
    out.add_row({"permission audit (grants / violations)",
                 Table::integer(r.permission_grants_audited) + " / " +
                     Table::integer(r.permission_violations)});
  if (cfg.algo == mutex::Algo::kCaoSinghal ||
      cfg.algo == mutex::Algo::kCaoSinghalNoProxy) {
    out.add_row({"replies forwarded / direct",
                 Table::integer(r.protocol_stats.replies_forwarded) + " / " +
                     Table::integer(r.protocol_stats.replies_direct)});
    out.add_row({"yields", Table::integer(r.protocol_stats.yields_sent)});
    out.add_row({"§6 recoveries",
                 Table::integer(r.protocol_stats.recoveries)});
  }
  out.print(std::cout);

  if (!trace_out.empty()) {
    obs::ChromeTraceData data;
    data.n_sites = cap.n_sites;
    data.label = cap.label;
    data.messages = std::move(cap.messages);
    data.span_events = std::move(cap.span_events);
    std::ofstream f(trace_out);
    if (!f) {
      std::cerr << "cannot write " << trace_out << "\n";
      return 2;
    }
    obs::write_chrome_trace(f, data);
    std::cout << "\n[trace] wrote " << trace_out << " ("
              << data.messages.size() << " messages, "
              << data.span_events.size() << " span events)\n";
  }

  const bool ok = r.summary.violations == 0 && r.drained_clean &&
                  r.permission_violations == 0;
  std::cout << (ok ? "\nOK: safe and live.\n"
                   : "\nFAILED: safety or liveness violated.\n");
  return ok ? 0 : 1;
} catch (const dqme::CheckError& e) {
  std::cerr << "configuration error: " << e.what() << "\n";
  return 2;
}
