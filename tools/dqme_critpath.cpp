// dqme_critpath — per-request delay-budget inspector (src/obs/critpath).
//
// Runs the Table-1 ping-pong scenario (two drivers on a 3x3 grid, constant
// delay T, CS duration 2T so every contended handoff is proxy-eligible),
// reconstructs each request's critical path from the recorded causal edge
// stream, and prints the delay budget plus the top-K slowest paths as
// ASCII renders: every tick of a request's wait attributed to wire
// transit, arbiter queue-wait, predecessor CS occupancy, or proxy forward.
//
// Modes:
//   (default)    one algorithm's scenario (--algo, default cao-singhal)
//   --table1     the paper's conformance check: cao-singhal AND maekawa on
//                the identical schedule; every contended Cao–Singhal path
//                must end in exactly ONE wire hop after the holder's exit
//                (1·T) and every Maekawa path in TWO (2·T). Exit 1 on any
//                violation. With --json, writes both budgets plus the
//                expected forms for scripts/validate_critpath.py.
//   --selftest   seeded known-path fixtures (hand-built event streams with
//                known causes) + the --table1 gate; exit 0/1.
//
// usage: dqme_critpath [--algo=NAME] [--rounds=R] [--top=K]
//                      [--json[=PATH]] [--table1] [--selftest]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "mutex/factory.h"
#include "net/network.h"
#include "obs/critpath.h"
#include "quorum/factory.h"
#include "sim/simulator.h"

namespace {

using namespace dqme;

constexpr Time kT = 1000;   // constant message delay
constexpr Time kE = 2 * kT; // CS duration; >= T keeps handoffs proxy-eligible

void usage() {
  std::cerr << "usage: dqme_critpath [--algo=NAME] [--rounds=R] [--top=K] "
               "[--json[=PATH]] [--table1] [--selftest]\n";
}

// The span_test ping-pong rig: sites 2 and 7 of a 3x3 grid (overlapping
// arbiters {1, 8}) alternate the CS in a closed loop — the deterministic
// contended schedule behind the paper's Table 1 numbers.
struct Scenario {
  std::vector<obs::SpanEvent> events;
  size_t enters = 0;
};

Scenario run_pingpong(mutex::Algo algo, int rounds) {
  sim::Simulator sim;
  net::Network net(sim, 9, std::make_unique<net::ConstantDelay>(kT), 1);
  obs::SpanRecorder spans(net);
  auto quorums = quorum::make_quorum_system("grid", 9);
  std::vector<std::unique_ptr<mutex::MutexSite>> sites;
  for (SiteId i = 0; i < 9; ++i) {
    sites.push_back(
        mutex::make_site(algo, i, net, quorums.get(), mutex::AlgoOptions{}));
    net.attach(i, sites.back().get());
    spans.attach(*sites.back());
  }
  auto drive = [&](SiteId id) {
    auto* s = sites[static_cast<size_t>(id)].get();
    auto remaining = std::make_shared<int>(rounds);
    s->on_enter = [&sim, s, remaining](SiteId, LockId) {
      sim.schedule_after(kE, [s, remaining] {
        s->release_cs(kLock0);
        if (--*remaining > 0) s->request_cs(kLock0);
      });
    };
    s->request_cs(kLock0);
  };
  drive(2);
  drive(7);
  sim.run();
  Scenario sc;
  sc.events = spans.events();
  for (const obs::SpanEvent& e : sc.events)
    if (e.edge == obs::SpanEdge::kEnter) ++sc.enters;
  return sc;
}

obs::CritStats stats_of(const std::vector<obs::CritPath>& paths) {
  obs::CritStats cs(kT);
  for (const obs::CritPath& p : paths) cs.record(p);
  return cs;
}

// Table-1 gate over one algorithm's extracted paths: every contended path
// must carry exactly `hops` wire hops after the last holder segment, each
// tail exactly hops * T. Prints violations; returns pass/fail.
bool check_table1(const std::string& name,
                  const std::vector<obs::CritPath>& paths, int hops) {
  size_t contended = 0;
  bool ok = true;
  for (const obs::CritPath& p : paths) {
    if (!p.contended) continue;
    ++contended;
    if (p.tail_hops != hops || p.tail_delay != hops * kT) {
      ok = false;
      std::cout << "  FAIL " << name << " span " << obs::format_span(p.span)
                << ": tail " << p.tail_hops << " hops = " << p.tail_delay
                << " ticks (expected " << hops << " hops = " << hops * kT
                << ")\n";
      obs::render_crit_path(std::cout, p, kT);
    }
  }
  if (contended == 0) {
    std::cout << "  FAIL " << name << ": no contended paths extracted\n";
    return false;
  }
  std::cout << "  " << name << ": " << contended
            << " contended paths, every tail " << hops << " wire hop"
            << (hops == 1 ? "" : "s") << " = " << hops << "*T"
            << (ok ? "  [ok]" : "  [FAIL]") << "\n";
  return ok;
}

int run_table1(bool json, const std::string& json_path, int rounds) {
  std::cout << "Table-1 conformance — identical ping-pong schedule "
               "(3x3 grid, T=1000, E=2T):\n";
  const Scenario cao = run_pingpong(mutex::Algo::kCaoSinghal, rounds);
  const Scenario mae = run_pingpong(mutex::Algo::kMaekawa, rounds);
  const auto cao_paths = obs::extract_critical_paths(cao.events);
  const auto mae_paths = obs::extract_critical_paths(mae.events);
  bool ok = check_table1("cao-singhal", cao_paths, 1);
  ok = check_table1("maekawa", mae_paths, 2) && ok;
  const obs::CritStats cao_cs = stats_of(cao_paths);
  const obs::CritStats mae_cs = stats_of(mae_paths);
  ok = ok && cao_cs.residual_ticks() == 0 && mae_cs.residual_ticks() == 0;
  if (json) {
    std::ostream* os = &std::cout;
    std::ofstream f;
    if (!json_path.empty()) {
      f.open(json_path);
      if (!f) {
        std::cerr << "cannot write " << json_path << "\n";
        return 2;
      }
      os = &f;
    }
    *os << "{\n  \"suite\": \"dqme_critpath_table1\",\n  \"ok\": "
        << (ok ? "true" : "false") << ",\n  \"mean_delay\": " << kT
        << ",\n  \"algos\": {\n"
        << "    \"cao-singhal\": {\"expected_tail_hops\": 1, "
           "\"expected_tail_t\": 1, \"critpath\": ";
    cao_cs.write_json(*os);
    *os << "},\n    \"maekawa\": {\"expected_tail_hops\": 2, "
           "\"expected_tail_t\": 2, \"critpath\": ";
    mae_cs.write_json(*os);
    *os << "}\n  }\n}\n";
    if (!json_path.empty())
      std::cout << "  [json] wrote " << json_path << "\n";
  }
  std::cout << (ok ? "TABLE-1 GATE: pass\n" : "TABLE-1 GATE: FAIL\n");
  return ok ? 0 : 1;
}

// --selftest: hand-built event streams where the correct path is known by
// construction, then the live Table-1 gate on both algorithms.
int run_selftest() {
  using obs::CritBucket;
  using obs::SpanEdge;
  using obs::SpanEvent;
  int failures = 0;
  auto expect = [&](bool cond, const std::string& what) {
    if (!cond) {
      ++failures;
      std::cout << "  FAIL: " << what << "\n";
    }
  };
  const SpanId h = span_of(ReqId{1, 7});
  const SpanId a = span_of(ReqId{1, 2});

  {
    // Fixture 1 — §3 proxy handoff, requester issued during the holder's
    // tenure: [holder][proxy], tail 1 hop = 1T.
    std::vector<SpanEvent> ev{
        {0, 0, SpanEdge::kIssue, h, 7, 7, kNoSite, kLock0, -1},
        {0, 0, SpanEdge::kEnter, h, 7, 7, kNoSite, kLock0, 0},
        {100, 100, SpanEdge::kIssue, a, 2, 2, kNoSite, kLock0, -1},
        {1100, 100, SpanEdge::kRequest, a, 2, 1, 1, kLock0, 2},
        {2000, 2000, SpanEdge::kExit, h, 7, 7, kNoSite, kLock0, -1},
        {3000, 2000, SpanEdge::kProxyGrant, a, 7, 2, 1, kLock0, 4},
        {3000, 3000, SpanEdge::kEnter, a, 2, 2, kNoSite, kLock0, 5},
    };
    const auto paths = obs::extract_critical_paths(ev);
    expect(paths.size() == 2, "fixture1: two paths (holder + requester)");
    const obs::CritPath& p = paths.back();
    expect(p.span == a && p.contended, "fixture1: requester path contended");
    expect(p.tail_hops == 1 && p.tail_delay == kT,
           "fixture1: tail is one proxy hop = 1T");
    expect(p.in_bucket(CritBucket::kHolder) == 1900 &&
               p.in_bucket(CritBucket::kProxy) == 1000,
           "fixture1: budget = 1900 holder + 1000 proxy");
    expect(p.waiting() == 2900 &&
               p.in_bucket(CritBucket::kHolder) +
                       p.in_bucket(CritBucket::kProxy) ==
                   p.waiting(),
           "fixture1: conservation");
  }
  {
    // Fixture 2 — Maekawa relay: exit -> release -> arbiter -> grant,
    // tail 2 wire hops = 2T.
    std::vector<SpanEvent> ev{
        {0, 0, SpanEdge::kIssue, h, 7, 7, kNoSite, kLock0, -1},
        {0, 0, SpanEdge::kEnter, h, 7, 7, kNoSite, kLock0, 0},
        {100, 100, SpanEdge::kIssue, a, 2, 2, kNoSite, kLock0, -1},
        {1100, 100, SpanEdge::kRequest, a, 2, 1, 1, kLock0, 2},
        {2000, 2000, SpanEdge::kExit, h, 7, 7, kNoSite, kLock0, -1},
        {3000, 2000, SpanEdge::kRelease, h, 7, 1, 1, kLock0, 4},
        {4000, 3000, SpanEdge::kGrant, a, 1, 2, 1, kLock0, 5},
        {4000, 4000, SpanEdge::kEnter, a, 2, 2, kNoSite, kLock0, 6},
    };
    const auto paths = obs::extract_critical_paths(ev);
    expect(paths.size() == 2, "fixture2: two paths");
    const obs::CritPath& p = paths.back();
    expect(p.contended && p.tail_hops == 2 && p.tail_delay == 2 * kT,
           "fixture2: tail is two wire hops = 2T");
    expect(p.in_bucket(CritBucket::kWire) == 2000 &&
               p.in_bucket(CritBucket::kHolder) == 1900,
           "fixture2: budget = 2000 wire + 1900 holder");
    expect(p.waiting() == 3900, "fixture2: waiting = 3900");
  }
  {
    // Fixture 3 — requester issued BEFORE the holder entered: the budget
    // below the holder segment is the request's own wire hop plus the
    // arbiter queue-wait. [wire][queue][holder][proxy].
    std::vector<SpanEvent> ev{
        {0, 0, SpanEdge::kIssue, a, 2, 2, kNoSite, kLock0, -1},
        {1000, 0, SpanEdge::kRequest, a, 2, 1, 1, kLock0, 0},
        {500, 500, SpanEdge::kIssue, h, 7, 7, kNoSite, kLock0, -1},
        {1500, 1500, SpanEdge::kEnter, h, 7, 7, kNoSite, kLock0, -1},
        {2500, 2500, SpanEdge::kExit, h, 7, 7, kNoSite, kLock0, -1},
        {3500, 2500, SpanEdge::kProxyGrant, a, 7, 2, 1, kLock0, 4},
        {3500, 3500, SpanEdge::kEnter, a, 2, 2, kNoSite, kLock0, 5},
    };
    const auto paths = obs::extract_critical_paths(ev);
    expect(paths.size() == 2, "fixture3: two paths");
    const obs::CritPath& p = paths.back();
    expect(p.segments.size() == 4, "fixture3: four segments");
    expect(p.in_bucket(CritBucket::kWire) == 1000 &&
               p.in_bucket(CritBucket::kQueue) == 500 &&
               p.in_bucket(CritBucket::kHolder) == 1000 &&
               p.in_bucket(CritBucket::kProxy) == 1000,
           "fixture3: budget = wire 1000 / queue 500 / holder 1000 / "
           "proxy 1000");
    expect(p.waiting() == 3500, "fixture3: conservation");
    expect(p.tail_hops == 1 && p.tail_delay == kT, "fixture3: 1T tail");
  }
  {
    // Fixture 4 — broken chain (cause outside the window): the residue
    // must land in kOther, never vanish.
    std::vector<SpanEvent> ev{
        {0, 0, SpanEdge::kIssue, a, 2, 2, kNoSite, kLock0, -1},
        {3000, 3000, SpanEdge::kEnter, a, 2, 2, kNoSite, kLock0, -1},
    };
    const auto paths = obs::extract_critical_paths(ev);
    expect(paths.size() == 1, "fixture4: one path");
    expect(paths[0].in_bucket(CritBucket::kOther) == 3000 &&
               paths[0].waiting() == 3000,
           "fixture4: unattributable wait lands in kOther");
    expect(!paths[0].contended, "fixture4: not contended");
  }
  std::cout << "  fixtures: " << (failures == 0 ? "pass" : "FAIL") << "\n";
  const int table1 = run_table1(false, "", 6);
  return (failures == 0 && table1 == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dqme;
  mutex::Algo algo = mutex::Algo::kCaoSinghal;
  int rounds = 6;
  size_t top = 3;
  bool json = false, table1 = false, selftest = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a.rfind("--algo=", 0) == 0) {
      algo = mutex::algo_from_string(a.substr(7));
    } else if (a.rfind("--rounds=", 0) == 0) {
      rounds = std::atoi(a.c_str() + 9);
      if (rounds < 1) {
        usage();
        return 2;
      }
    } else if (a.rfind("--top=", 0) == 0) {
      top = static_cast<size_t>(std::atoll(a.c_str() + 6));
    } else if (a == "--json") {
      json = true;
    } else if (a.rfind("--json=", 0) == 0) {
      json = true;
      json_path = a.substr(7);
    } else if (a == "--table1") {
      table1 = true;
    } else if (a == "--selftest") {
      selftest = true;
    } else {
      std::cerr << "dqme_critpath: unknown argument '" << a << "'\n";
      usage();
      return 2;
    }
  }
  if (selftest) return run_selftest();
  if (table1) return run_table1(json, json_path, rounds);

  const Scenario sc = run_pingpong(algo, rounds);
  auto paths = obs::extract_critical_paths(sc.events);
  const obs::CritStats cs = stats_of(paths);

  if (json) {
    std::ostream* os = &std::cout;
    std::ofstream f;
    if (!json_path.empty()) {
      f.open(json_path);
      if (!f) {
        std::cerr << "cannot write " << json_path << "\n";
        return 2;
      }
      os = &f;
    }
    *os << "{\n  \"suite\": \"dqme_critpath\",\n  \"algo\": \""
        << mutex::to_string(algo) << "\",\n  \"critpath\": ";
    cs.write_json(*os);
    *os << "\n}\n";
    if (!json_path.empty()) std::cout << "[json] wrote " << json_path << "\n";
    return 0;
  }

  std::cout << "Critical-path delay budget — " << mutex::to_string(algo)
            << ", ping-pong sites 2 & 7 on a 3x3 grid, T=" << kT
            << ", E=2T, " << rounds << " rounds\n\n"
            << "  paths " << cs.paths() << " (" << cs.contended()
            << " contended), conservation residual " << cs.residual_ticks()
            << " ticks\n";
  const double w = static_cast<double>(cs.waiting_ticks());
  if (w > 0) {
    std::cout << "  budget:";
    for (size_t b = 0; b < obs::kNumCritBuckets; ++b) {
      const auto bucket = static_cast<obs::CritBucket>(b);
      char buf[64];
      std::snprintf(buf, sizeof buf, "  %s %.1f%%",
                    std::string(obs::to_string(bucket)).c_str(),
                    100.0 * static_cast<double>(cs.ticks(bucket)) / w);
      std::cout << buf;
    }
    std::cout << "\n  mean contended tail: " << cs.mean_tail_in_t()
              << " T\n";
  }

  std::sort(paths.begin(), paths.end(),
            [](const obs::CritPath& x, const obs::CritPath& y) {
              return x.waiting() != y.waiting() ? x.waiting() > y.waiting()
                                                : x.entered < y.entered;
            });
  if (top > paths.size()) top = paths.size();
  std::cout << "\ntop " << top << " slowest paths:\n";
  for (size_t i = 0; i < top; ++i) {
    obs::render_crit_path(std::cout, paths[i], kT);
    std::cout << "\n";
  }
  return 0;
}
