// dqme_explore — schedule-space model checker CLI (src/verify).
//
// Drives the deterministic simulator through every (sleep-set reduced)
// message-delivery interleaving of a small configuration and runs the full
// invariant set on each schedule. Finds the adversarial orderings a single
// seeded run never produces; when it finds a violation it emits a minimal
// replayable schedule that `dqme_sim --replay-schedule` reproduces.
//
// Examples:
//   dqme_explore --algo cao-singhal --n 3 --cs-per-site 2
//   dqme_explore --algo cao-singhal --n 3 --crashes 1 --compare-naive
//   dqme_explore --algo maekawa --n 3 --budget 50000 --frontier-out f.json
//   dqme_explore --mutate double-grant --repro-out repro.json
//   dqme_explore --preset smoke --json smoke.json
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "verify/explorer.h"

namespace {

using namespace dqme;

void usage(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [options]\n"
      << "  --algo NAME        protocol to check (default cao-singhal)\n"
      << "  --n N              number of sites (default 3)\n"
      << "  --quorum KIND      quorum construction (default grid)\n"
      << "  --cs-per-site K    CS entries each site wants (default 2)\n"
      << "  --depth D          truncate schedules after D actions (0 = off)\n"
      << "  --budget S         stop after S complete schedules (0 = off)\n"
      << "  --nodes M          stop after M explored actions (0 = off)\n"
      << "  --crashes K        allow up to K crash actions per schedule\n"
      << "  --crash-sites \"A B\"  candidate victims (default: site n-1)\n"
      << "  --ft               §6 fault-tolerance layer (implied by\n"
      << "                     --crashes > 0)\n"
      << "  --mutate NAME      seeded fault: double-grant | lost-transfer |\n"
      << "                     fifo-inversion (negative testing)\n"
      << "  --no-por           naive DFS, no sleep-set reduction\n"
      << "  --compare-naive    run reduced and naive, report both + ratio\n"
      << "  --keep-going       collect every violation, not just the first\n"
      << "  --no-minimize      keep counterexamples unshrunk\n"
      << "  --repro-out FILE   write the first violation as a replayable\n"
      << "                     schedule (dqme_sim --replay-schedule FILE)\n"
      << "  --trace-out FILE   Chrome trace of the first counterexample\n"
      << "  --flightrec-out FILE  flight-recorder dump of the replayed\n"
      << "                     counterexample (ring tail ends in the\n"
      << "                     violation)\n"
      << "  --json FILE        machine-readable report\n"
      << "  --frontier-out FILE  serialize the DFS stack when a budget\n"
      << "                     suspends the search\n"
      << "  --resume FILE      continue from a saved frontier\n"
      << "  --preset smoke     CI gate: cao-singhal + maekawa at N=3,\n"
      << "                     bounded budget, expects 0 violations\n";
}

struct Options {
  verify::ExplorerConfig explorer;
  bool crash_sites_set = false;
  bool ft_set = false;
  bool compare_naive = false;
  std::string repro_out;
  std::string trace_out;
  std::string flightrec_out;
  std::string json_out;
  std::string frontier_out;
  std::string resume;
  std::string preset;
};

bool parse_args(int argc, char** argv, Options& opt) {
  verify::ExplorerConfig& ex = opt.explorer;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else if (a == "--algo") {
      ex.world.algo = mutex::algo_from_string(next());
    } else if (a == "--n") {
      ex.world.n = std::atoi(next());
    } else if (a == "--quorum") {
      ex.world.quorum = next();
    } else if (a == "--cs-per-site") {
      ex.world.cs_per_site = std::atoi(next());
    } else if (a == "--depth") {
      ex.max_depth = std::atoi(next());
    } else if (a == "--budget") {
      ex.max_schedules = static_cast<uint64_t>(std::atoll(next()));
    } else if (a == "--nodes") {
      ex.max_nodes = static_cast<uint64_t>(std::atoll(next()));
    } else if (a == "--crashes") {
      ex.world.max_crashes = std::atoi(next());
    } else if (a == "--crash-sites") {
      opt.crash_sites_set = true;
      ex.world.crash_sites.clear();
      std::istringstream sites(next());
      SiteId s = kNoSite;
      while (sites >> s) ex.world.crash_sites.push_back(s);
    } else if (a == "--ft") {
      opt.ft_set = true;
    } else if (a == "--mutate") {
      ex.world.mutation = verify::mutation_from_string(next());
    } else if (a == "--no-por") {
      ex.por = false;
    } else if (a == "--compare-naive") {
      opt.compare_naive = true;
    } else if (a == "--keep-going") {
      ex.stop_on_violation = false;
    } else if (a == "--no-minimize") {
      ex.minimize = false;
    } else if (a == "--repro-out") {
      opt.repro_out = next();
    } else if (a == "--trace-out") {
      opt.trace_out = next();
    } else if (a == "--flightrec-out") {
      opt.flightrec_out = next();
    } else if (a == "--json") {
      opt.json_out = next();
    } else if (a == "--frontier-out") {
      opt.frontier_out = next();
    } else if (a == "--resume") {
      opt.resume = next();
    } else if (a == "--preset") {
      opt.preset = next();
    } else {
      std::cerr << "unknown option: " << a << "\n";
      return false;
    }
  }
  if (ex.world.max_crashes > 0) {
    // Crash branching exercises the §6 recovery layer, which only the
    // fault-tolerant Cao-Singhal configuration implements.
    ex.world.fault_tolerant = true;
    if (!opt.crash_sites_set)
      ex.world.crash_sites = {static_cast<SiteId>(ex.world.n - 1)};
  }
  if (opt.ft_set) ex.world.fault_tolerant = true;
  return true;
}

void write_json_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

void print_result(const char* label, const verify::ExplorerConfig& cfg,
                  const verify::ExploreResult& r, double wall_ms) {
  std::cout << label << mutex::to_string(cfg.world.algo)
            << "  N=" << cfg.world.n << "  quorum=" << cfg.world.quorum
            << "  cs/site=" << cfg.world.cs_per_site
            << "  crashes<=" << cfg.world.max_crashes
            << (cfg.por ? "  [sleep-set POR]" : "  [naive DFS]") << "\n";
  std::cout << "  schedules " << r.schedules << " (truncated " << r.truncated
            << ")  nodes " << r.nodes << "  replays " << r.replays << " ("
            << r.replay_steps << " steps)  pruned " << r.sleep_skips
            << "  " << (r.complete            ? "COMPLETE"
                        : r.budget_exhausted  ? "BUDGET EXHAUSTED"
                                              : "STOPPED")
            << "  " << wall_ms << " ms\n";
  for (const verify::Violation& v : r.violations) {
    std::cout << "  VIOLATION (" << v.schedule.size() << " actions): "
              << verify::encode_actions(v.schedule) << "\n";
    for (const std::string& rep : v.reports) std::cout << "    " << rep
                                                       << "\n";
  }
}

void write_json_report(std::ostream& os, const verify::ExplorerConfig& cfg,
                       const verify::ExploreResult& r, double wall_ms,
                       const verify::ExploreResult* naive,
                       double naive_wall_ms) {
  os << "{\"dqme_explore\":1,";
  verify::write_config_fields(os, cfg.world);
  os << ",\n\"max_depth\":" << cfg.max_depth << ",\"por\":"
     << (cfg.por ? "true" : "false") << ",\"schedules\":" << r.schedules
     << ",\"truncated\":" << r.truncated << ",\"nodes\":" << r.nodes
     << ",\"replays\":" << r.replays << ",\"replay_steps\":" << r.replay_steps
     << ",\"sleep_skips\":" << r.sleep_skips << ",\"complete\":"
     << (r.complete ? "true" : "false") << ",\"budget_exhausted\":"
     << (r.budget_exhausted ? "true" : "false")
     << ",\"violations\":" << r.violations.size() << ",\"wall_ms\":"
     << wall_ms;
  if (naive != nullptr) {
    os << ",\n\"naive_schedules\":" << naive->schedules
       << ",\"naive_nodes\":" << naive->nodes << ",\"naive_complete\":"
       << (naive->complete ? "true" : "false") << ",\"naive_wall_ms\":"
       << naive_wall_ms << ",\"por_schedule_ratio\":"
       << (r.schedules > 0
               ? static_cast<double>(naive->schedules) /
                     static_cast<double>(r.schedules)
               : 0.0)
       << ",\"por_node_ratio\":"
       << (r.nodes > 0 ? static_cast<double>(naive->nodes) /
                             static_cast<double>(r.nodes)
                       : 0.0);
  }
  os << ",\n\"violation_reports\":[";
  bool first = true;
  for (const verify::Violation& v : r.violations)
    for (const std::string& rep : v.reports) {
      if (!first) os << ",";
      first = false;
      write_json_escaped(os, rep);
    }
  os << "]}\n";
}

double run_explorer(verify::Explorer& ex, verify::ExploreResult& out) {
  const auto start = std::chrono::steady_clock::now();
  out = ex.run();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

// Writes the counterexample artifacts for the first recorded violation.
bool write_violation_artifacts(const Options& opt,
                               const verify::ExploreResult& r) {
  if (r.violations.empty()) return true;
  const verify::Violation& v = r.violations.front();
  if (!opt.repro_out.empty()) {
    std::ofstream f(opt.repro_out);
    if (!f) {
      std::cerr << "cannot write " << opt.repro_out << "\n";
      return false;
    }
    verify::write_schedule(f, opt.explorer.world, v.schedule, v.reports);
    std::cout << "[repro] wrote " << opt.repro_out << " ("
              << v.schedule.size() << " actions) — replay with: dqme_sim "
              << "--replay-schedule " << opt.repro_out << "\n";
  }
  if (!opt.trace_out.empty() || !opt.flightrec_out.empty()) {
    auto world =
        verify::replay_schedule(opt.explorer.world, v.schedule, true);
    if (!opt.trace_out.empty()) {
      obs::ChromeTraceData data;
      data.n_sites = opt.explorer.world.n;
      data.label =
          "dqme_explore counterexample (" +
          std::string(mutex::to_string(opt.explorer.world.algo)) + ")";
      data.messages = world->trace_recorder()->events();
      data.span_events = world->span_recorder()->events();
      std::ofstream f(opt.trace_out);
      if (!f) {
        std::cerr << "cannot write " << opt.trace_out << "\n";
        return false;
      }
      obs::write_chrome_trace(f, data);
      std::cout << "[trace] wrote " << opt.trace_out << " ("
                << data.messages.size() << " messages)\n";
    }
    if (!opt.flightrec_out.empty()) {
      // The replayed World wires its checker into the capture-mode flight
      // recorder, so the ring now ends with the replayed violation.
      obs::FlightRecorder* fr = world->flight_recorder();
      if (fr == nullptr || !fr->dump_to(opt.flightrec_out)) {
        std::cerr << "cannot write " << opt.flightrec_out << "\n";
        return false;
      }
      std::cout << "[flightrec] wrote " << opt.flightrec_out << " ("
                << fr->size() << " ring events)\n";
    }
  }
  return true;
}

// CI gate: two protocols, bounded budget, zero tolerance for violations.
// Passes when each run either covered its whole (reduced) space or explored
// its full schedule budget — and nothing was flagged.
int run_smoke(const Options& opt) {
  struct SmokeRun {
    const char* algo;
    uint64_t budget;
  };
  const SmokeRun runs[] = {{"cao-singhal", 12000}, {"maekawa", 12000}};
  uint64_t total_schedules = 0;
  uint64_t total_violations = 0;
  bool all_covered = true;
  std::ostringstream json;
  json << "{\"dqme_explore_smoke\":1,\"runs\":[\n";
  for (size_t i = 0; i < std::size(runs); ++i) {
    verify::ExplorerConfig cfg;
    cfg.world.algo = mutex::algo_from_string(runs[i].algo);
    cfg.world.n = 3;
    cfg.world.quorum = "grid";
    cfg.world.cs_per_site = 2;
    cfg.max_schedules = runs[i].budget;
    verify::Explorer ex(cfg);
    verify::ExploreResult r;
    const double wall_ms = run_explorer(ex, r);
    print_result("[smoke] ", cfg, r, wall_ms);
    total_schedules += r.schedules;
    total_violations += r.violations.size();
    if (!r.complete && !r.budget_exhausted) all_covered = false;
    if (i > 0) json << ",\n";
    write_json_report(json, cfg, r, wall_ms, nullptr, 0);
    if (r.budget_exhausted && !opt.frontier_out.empty()) {
      const std::string path =
          opt.frontier_out + "." + std::string(runs[i].algo);
      std::ofstream f(path);
      if (f) ex.save_frontier(f);
    }
  }
  json << "],\"total_schedules\":" << total_schedules
       << ",\"total_violations\":" << total_violations << "}\n";
  if (!opt.json_out.empty()) {
    std::ofstream f(opt.json_out);
    if (!f) {
      std::cerr << "cannot write " << opt.json_out << "\n";
      return 2;
    }
    f << json.str();
  }
  const bool pass =
      total_violations == 0 && all_covered && total_schedules >= 10000;
  std::cout << "[smoke] total schedules " << total_schedules
            << ", violations " << total_violations << " -> "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) try {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }
  if (!opt.preset.empty()) {
    if (opt.preset != "smoke") {
      std::cerr << "unknown preset: " << opt.preset << "\n";
      return 2;
    }
    return run_smoke(opt);
  }

  verify::Explorer explorer(opt.explorer);
  if (!opt.resume.empty()) {
    std::ifstream f(opt.resume);
    std::string err;
    if (!f || !explorer.load_frontier(f, &err)) {
      std::cerr << "cannot resume from " << opt.resume << ": " << err
                << "\n";
      return 2;
    }
    // The frontier carries the WorldConfig it was saved under.
    opt.explorer.world = explorer.config().world;
  }
  verify::ExploreResult result;
  const double wall_ms = run_explorer(explorer, result);
  print_result("dqme_explore: ", opt.explorer, result, wall_ms);

  const verify::ExploreResult* naive = nullptr;
  verify::ExploreResult naive_result;
  double naive_wall_ms = 0;
  if (opt.compare_naive) {
    verify::ExplorerConfig naive_cfg = opt.explorer;
    naive_cfg.por = false;
    verify::Explorer naive_ex(naive_cfg);
    naive_wall_ms = run_explorer(naive_ex, naive_result);
    print_result("naive:        ", naive_cfg, naive_result, naive_wall_ms);
    naive = &naive_result;
    if (result.schedules > 0)
      std::cout << "POR reduction: " << naive_result.schedules << " / "
                << result.schedules << " = "
                << static_cast<double>(naive_result.schedules) /
                       static_cast<double>(result.schedules)
                << "x schedules\n";
  }

  if (!write_violation_artifacts(opt, result)) return 2;
  if (result.budget_exhausted && !opt.frontier_out.empty()) {
    std::ofstream f(opt.frontier_out);
    if (!f) {
      std::cerr << "cannot write " << opt.frontier_out << "\n";
      return 2;
    }
    explorer.save_frontier(f);
    std::cout << "[frontier] wrote " << opt.frontier_out
              << " — continue with --resume " << opt.frontier_out << "\n";
  }
  if (!opt.json_out.empty()) {
    std::ofstream f(opt.json_out);
    if (!f) {
      std::cerr << "cannot write " << opt.json_out << "\n";
      return 2;
    }
    write_json_report(f, opt.explorer, result, wall_ms, naive,
                      naive_wall_ms);
  }
  return result.violations.empty() ? 0 : 1;
} catch (const dqme::CheckError& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
