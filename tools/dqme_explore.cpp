// dqme_explore — schedule-space model checker CLI (src/verify).
//
// Drives the deterministic simulator through every (DPOR-reduced)
// message-delivery interleaving of a small configuration and runs the full
// invariant set on each schedule. Finds the adversarial orderings a single
// seeded run never produces; when it finds a violation it emits a minimal
// replayable schedule that `dqme_sim --replay-schedule` reproduces.
//
// Two reductions (--dpor): `sleep` is the conservative touched-site
// relation, `source` (the default) refines crash dependence to the
// victim's locality — strictly fewer schedules on crash grids, same
// invariant coverage. `--workers K` explores in parallel with work
// stealing; merged counts and the first counterexample are byte-identical
// to the single-threaded run.
//
// Examples:
//   dqme_explore --algo cao-singhal --n 3 --cs-per-site 2
//   dqme_explore --n 3 --crashes 1 --compare          # sleep-vs-source
//   dqme_explore --n 4 --crashes 1 --workers 8        # parallel
//   dqme_explore --algo maekawa --n 3 --budget 50000 --frontier-out f.json
//   dqme_explore --mutate double-grant --repro-out repro.json
//   dqme_explore --preset smoke --json smoke.json
//   dqme_explore --preset n4 --workers 8 --json n4.json
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "verify/explorer.h"
#include "verify/parallel.h"

namespace {

using namespace dqme;

void usage(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [options]\n"
      << "  --algo NAME        protocol to check (default cao-singhal)\n"
      << "  --n N              number of sites (default 3)\n"
      << "  --quorum KIND      quorum construction (default grid)\n"
      << "  --cs-per-site K    CS entries each site wants (default 2)\n"
      << "  --depth D          truncate schedules after D actions (0 = off)\n"
      << "  --budget S         stop after S complete schedules (0 = off)\n"
      << "  --nodes M          stop after M explored actions (0 = off)\n"
      << "  --crashes K        allow up to K crash actions per schedule\n"
      << "  --crash-sites \"A B\"  candidate victims (default: site n-1)\n"
      << "  --ft               §6 fault-tolerance layer (implied by\n"
      << "                     --crashes > 0)\n"
      << "  --mutate NAME      seeded fault: double-grant | lost-transfer |\n"
      << "                     fifo-inversion | deadlock-ordering\n"
      << "  --dpor MODE        dependence relation: source (default) |\n"
      << "                     sleep (conservative, crash vs everything)\n"
      << "  --workers K        parallel exploration with K worker threads\n"
      << "                     (default 1; counts stay byte-identical)\n"
      << "  --split-depth D    task-split depth for --workers (default 2)\n"
      << "  --no-por           naive DFS, no reduction at all\n"
      << "  --compare          run sleep and source DPOR, report the ratio\n"
      << "  --compare-naive    run reduced and naive, report both + ratio\n"
      << "  --keep-going       collect every violation, not just the first\n"
      << "  --no-minimize      keep counterexamples unshrunk\n"
      << "  --repro-out FILE   write the first violation as a replayable\n"
      << "                     schedule (dqme_sim --replay-schedule FILE)\n"
      << "  --trace-out FILE   Chrome trace of the first counterexample\n"
      << "  --flightrec-out FILE  flight-recorder dump of the replayed\n"
      << "                     counterexample (ring tail ends in the\n"
      << "                     violation)\n"
      << "  --json FILE        machine-readable report\n"
      << "  --frontier-out FILE  serialize the remaining work when a budget\n"
      << "                     suspends the search (resumable at any\n"
      << "                     --workers count)\n"
      << "  --resume FILE      continue from a saved frontier (v1 or v2)\n"
      << "  --preset smoke     CI gate: cao-singhal + maekawa at N=3,\n"
      << "                     bounded budget, expects 0 violations\n"
      << "  --preset n4        CI gate: exhaustive cao-singhal N=4 with one\n"
      << "                     crash, expects COMPLETE and 0 violations\n";
}

struct Options {
  verify::ExplorerConfig explorer;
  int workers = 1;
  size_t split_depth = 0;  // 0 = ParallelExplorer default
  bool crash_sites_set = false;
  bool ft_set = false;
  bool compare_naive = false;
  bool compare_dpor = false;
  std::string repro_out;
  std::string trace_out;
  std::string flightrec_out;
  std::string json_out;
  std::string frontier_out;
  std::string resume;
  std::string preset;
};

bool parse_args(int argc, char** argv, Options& opt) {
  verify::ExplorerConfig& ex = opt.explorer;
  ex.dpor = verify::Dpor::kSource;  // CLI default; the library stays kSleep
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    // Accept both "--flag value" and "--flag=value" (CI uses the latter).
    const char* inline_value = nullptr;
    if (a.rfind("--", 0) == 0) {
      const size_t eq = a.find('=');
      if (eq != std::string::npos) {
        inline_value = argv[i] + eq + 1;
        a.resize(eq);
      }
    }
    auto next = [&]() -> const char* {
      if (inline_value != nullptr) return inline_value;
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else if (a == "--algo") {
      ex.world.algo = mutex::algo_from_string(next());
    } else if (a == "--n") {
      ex.world.n = std::atoi(next());
    } else if (a == "--quorum") {
      ex.world.quorum = next();
    } else if (a == "--cs-per-site") {
      ex.world.cs_per_site = std::atoi(next());
    } else if (a == "--depth") {
      ex.max_depth = std::atoi(next());
    } else if (a == "--budget") {
      ex.max_schedules = static_cast<uint64_t>(std::atoll(next()));
    } else if (a == "--nodes") {
      ex.max_nodes = static_cast<uint64_t>(std::atoll(next()));
    } else if (a == "--crashes") {
      ex.world.max_crashes = std::atoi(next());
    } else if (a == "--crash-sites") {
      opt.crash_sites_set = true;
      ex.world.crash_sites.clear();
      std::istringstream sites(next());
      SiteId s = kNoSite;
      while (sites >> s) ex.world.crash_sites.push_back(s);
    } else if (a == "--ft") {
      opt.ft_set = true;
    } else if (a == "--mutate") {
      ex.world.mutation = verify::mutation_from_string(next());
    } else if (a == "--dpor") {
      ex.dpor = verify::dpor_from_string(next());
    } else if (a == "--workers") {
      opt.workers = std::atoi(next());
      if (opt.workers < 1) opt.workers = 1;
    } else if (a == "--split-depth") {
      opt.split_depth = static_cast<size_t>(std::atoll(next()));
    } else if (a == "--no-por") {
      ex.por = false;
    } else if (a == "--compare") {
      opt.compare_dpor = true;
    } else if (a == "--compare-naive") {
      opt.compare_naive = true;
    } else if (a == "--keep-going") {
      ex.stop_on_violation = false;
    } else if (a == "--no-minimize") {
      ex.minimize = false;
    } else if (a == "--repro-out") {
      opt.repro_out = next();
    } else if (a == "--trace-out") {
      opt.trace_out = next();
    } else if (a == "--flightrec-out") {
      opt.flightrec_out = next();
    } else if (a == "--json") {
      opt.json_out = next();
    } else if (a == "--frontier-out") {
      opt.frontier_out = next();
    } else if (a == "--resume") {
      opt.resume = next();
    } else if (a == "--preset") {
      opt.preset = next();
    } else {
      std::cerr << "unknown option: " << a << "\n";
      return false;
    }
  }
  if (ex.world.max_crashes > 0) {
    // Crash branching exercises the §6 recovery layer, which only the
    // fault-tolerant Cao-Singhal configuration implements.
    ex.world.fault_tolerant = true;
    if (!opt.crash_sites_set)
      ex.world.crash_sites = {static_cast<SiteId>(ex.world.n - 1)};
  }
  if (opt.ft_set) ex.world.fault_tolerant = true;
  return true;
}

void write_json_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

// One exploration — sequential or parallel — behind a single seam, so the
// report/frontier plumbing does not care which engine ran.
struct RunOutcome {
  verify::ExploreResult result;
  double wall_ms = 0;
  int workers = 1;
  uint64_t tasks_run = 0;
  uint64_t tasks_donated = 0;
  bool parallel = false;
  // Engine kept alive for save_frontier after a budget suspension.
  std::unique_ptr<verify::Explorer> seq;
  std::unique_ptr<verify::ParallelExplorer> par;

  void save_frontier(std::ostream& os) const {
    if (parallel)
      par->save_frontier(os);
    else
      seq->save_frontier(os);
  }
  const verify::WorldConfig& world() const {
    return parallel ? par->config().base.world : seq->config().world;
  }
};

int frontier_version(const std::string& path) {
  std::ifstream f(path);
  std::string line;
  long marker = 0;
  if (f && std::getline(f, line) &&
      verify::json_field_num(line, "dqme_frontier", marker))
    return static_cast<int>(marker);
  return 0;
}

// Runs one exploration. `resume` may be empty; returns false on a resume
// file that does not load.
bool run_once(const verify::ExplorerConfig& cfg, int workers,
              size_t split_depth, const std::string& resume,
              RunOutcome& out) {
  // The v2 multi-task frontier needs the parallel driver even at
  // --workers 1; plain v1 keeps the sequential engine byte-compatible.
  out.parallel =
      workers > 1 || (!resume.empty() && frontier_version(resume) == 2);
  out.workers = workers;
  const auto start = std::chrono::steady_clock::now();
  if (out.parallel) {
    verify::ParallelConfig pc;
    pc.base = cfg;
    pc.workers = workers;
    pc.split_depth = split_depth;
    out.par = std::make_unique<verify::ParallelExplorer>(pc);
    if (!resume.empty()) {
      std::ifstream f(resume);
      std::string err;
      if (!f || !out.par->load_frontier(f, &err)) {
        std::cerr << "cannot resume from " << resume << ": " << err << "\n";
        return false;
      }
    }
    verify::ParallelResult pr = out.par->run();
    out.result = std::move(pr.merged);
    out.tasks_run = pr.tasks_run;
    out.tasks_donated = pr.tasks_donated;
  } else {
    out.seq = std::make_unique<verify::Explorer>(cfg);
    if (!resume.empty()) {
      std::ifstream f(resume);
      std::string err;
      if (!f || !out.seq->load_frontier(f, &err)) {
        std::cerr << "cannot resume from " << resume << ": " << err << "\n";
        return false;
      }
    }
    out.result = out.seq->run();
  }
  const auto end = std::chrono::steady_clock::now();
  out.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return true;
}

const char* reduction_label(const verify::ExplorerConfig& cfg) {
  if (!cfg.por) return "[naive DFS]";
  return cfg.dpor == verify::Dpor::kSource ? "[source-set DPOR]"
                                           : "[sleep-set POR]";
}

void print_result(const char* label, const verify::ExplorerConfig& cfg,
                  const RunOutcome& out) {
  const verify::ExploreResult& r = out.result;
  std::cout << label << mutex::to_string(cfg.world.algo)
            << "  N=" << cfg.world.n << "  quorum=" << cfg.world.quorum
            << "  cs/site=" << cfg.world.cs_per_site
            << "  crashes<=" << cfg.world.max_crashes << "  "
            << reduction_label(cfg) << "\n";
  if (out.parallel)
    std::cout << "  workers " << out.workers << "  tasks " << out.tasks_run
              << " (" << out.tasks_donated << " donated)\n";
  std::cout << "  schedules " << r.schedules << " (truncated " << r.truncated
            << ")  nodes " << r.nodes << "  replays " << r.replays << " ("
            << r.replay_steps << " steps)  pruned " << r.sleep_skips
            << "  " << (r.complete            ? "COMPLETE"
                        : r.budget_exhausted  ? "BUDGET EXHAUSTED"
                                              : "STOPPED")
            << "  " << out.wall_ms << " ms\n";
  for (const verify::Violation& v : r.violations) {
    std::cout << "  VIOLATION (" << v.schedule.size() << " actions): "
              << verify::encode_actions(v.schedule) << "\n";
    for (const std::string& rep : v.reports) std::cout << "    " << rep
                                                       << "\n";
  }
}

void write_json_report(std::ostream& os, const verify::ExplorerConfig& cfg,
                       const RunOutcome& out,
                       const verify::ExploreResult* naive,
                       double naive_wall_ms,
                       const verify::ExploreResult* other_dpor,
                       double other_wall_ms) {
  const verify::ExploreResult& r = out.result;
  os << "{\"dqme_explore\":1,";
  verify::write_config_fields(os, cfg.world);
  os << ",\n\"max_depth\":" << cfg.max_depth << ",\"por\":"
     << (cfg.por ? "true" : "false") << ",\"dpor\":\""
     << verify::to_string(cfg.dpor) << "\",\"workers\":" << out.workers
     << ",\"schedules\":" << r.schedules
     << ",\"truncated\":" << r.truncated << ",\"nodes\":" << r.nodes
     << ",\"replays\":" << r.replays << ",\"replay_steps\":" << r.replay_steps
     << ",\"sleep_skips\":" << r.sleep_skips << ",\"complete\":"
     << (r.complete ? "true" : "false") << ",\"budget_exhausted\":"
     << (r.budget_exhausted ? "true" : "false")
     << ",\"violations\":" << r.violations.size() << ",\"wall_ms\":"
     << out.wall_ms;
  if (out.parallel)
    os << ",\n\"tasks\":" << out.tasks_run
       << ",\"tasks_donated\":" << out.tasks_donated;
  if (naive != nullptr) {
    os << ",\n\"naive_schedules\":" << naive->schedules
       << ",\"naive_nodes\":" << naive->nodes << ",\"naive_complete\":"
       << (naive->complete ? "true" : "false") << ",\"naive_wall_ms\":"
       << naive_wall_ms << ",\"por_schedule_ratio\":"
       << (r.schedules > 0
               ? static_cast<double>(naive->schedules) /
                     static_cast<double>(r.schedules)
               : 0.0)
       << ",\"por_node_ratio\":"
       << (r.nodes > 0 ? static_cast<double>(naive->nodes) /
                             static_cast<double>(r.nodes)
                       : 0.0);
  }
  if (other_dpor != nullptr) {
    // The configured mode is the headline run; the other relation ran for
    // the ratio. Keyed by mode name so the fields read the same whichever
    // direction the comparison went.
    const bool main_is_source = cfg.dpor == verify::Dpor::kSource;
    const uint64_t sleep_schedules =
        main_is_source ? other_dpor->schedules : r.schedules;
    const uint64_t source_schedules =
        main_is_source ? r.schedules : other_dpor->schedules;
    const uint64_t sleep_nodes =
        main_is_source ? other_dpor->nodes : r.nodes;
    const uint64_t source_nodes =
        main_is_source ? r.nodes : other_dpor->nodes;
    os << ",\n\"sleep_schedules\":" << sleep_schedules
       << ",\"source_schedules\":" << source_schedules
       << ",\"sleep_nodes\":" << sleep_nodes
       << ",\"source_nodes\":" << source_nodes
       << ",\"other_dpor_wall_ms\":" << other_wall_ms
       << ",\"dpor_schedule_ratio\":"
       << (source_schedules > 0
               ? static_cast<double>(sleep_schedules) /
                     static_cast<double>(source_schedules)
               : 0.0)
       << ",\"dpor_node_ratio\":"
       << (source_nodes > 0 ? static_cast<double>(sleep_nodes) /
                                  static_cast<double>(source_nodes)
                            : 0.0);
  }
  os << ",\n\"violation_reports\":[";
  bool first = true;
  for (const verify::Violation& v : r.violations)
    for (const std::string& rep : v.reports) {
      if (!first) os << ",";
      first = false;
      write_json_escaped(os, rep);
    }
  os << "]}\n";
}

// Writes the counterexample artifacts for the first recorded violation.
bool write_violation_artifacts(const Options& opt,
                               const verify::ExploreResult& r) {
  if (r.violations.empty()) return true;
  const verify::Violation& v = r.violations.front();
  if (!opt.repro_out.empty()) {
    std::ofstream f(opt.repro_out);
    if (!f) {
      std::cerr << "cannot write " << opt.repro_out << "\n";
      return false;
    }
    verify::write_schedule(f, opt.explorer.world, v.schedule, v.reports);
    std::cout << "[repro] wrote " << opt.repro_out << " ("
              << v.schedule.size() << " actions) — replay with: dqme_sim "
              << "--replay-schedule " << opt.repro_out << "\n";
  }
  if (!opt.trace_out.empty() || !opt.flightrec_out.empty()) {
    auto world =
        verify::replay_schedule(opt.explorer.world, v.schedule, true);
    if (!opt.trace_out.empty()) {
      obs::ChromeTraceData data;
      data.n_sites = opt.explorer.world.n;
      data.label =
          "dqme_explore counterexample (" +
          std::string(mutex::to_string(opt.explorer.world.algo)) + ")";
      data.messages = world->trace_recorder()->events();
      data.span_events = world->span_recorder()->events();
      std::ofstream f(opt.trace_out);
      if (!f) {
        std::cerr << "cannot write " << opt.trace_out << "\n";
        return false;
      }
      obs::write_chrome_trace(f, data);
      std::cout << "[trace] wrote " << opt.trace_out << " ("
                << data.messages.size() << " messages)\n";
    }
    if (!opt.flightrec_out.empty()) {
      // The replayed World wires its checker into the capture-mode flight
      // recorder, so the ring now ends with the replayed violation.
      obs::FlightRecorder* fr = world->flight_recorder();
      if (fr == nullptr || !fr->dump_to(opt.flightrec_out)) {
        std::cerr << "cannot write " << opt.flightrec_out << "\n";
        return false;
      }
      std::cout << "[flightrec] wrote " << opt.flightrec_out << " ("
                << fr->size() << " ring events)\n";
    }
  }
  return true;
}

// CI gate: two protocols, bounded budget, zero tolerance for violations.
// Passes when each run either covered its whole (reduced) space or explored
// its full schedule budget — and nothing was flagged. Honors --workers (the
// TSan job runs this preset at 8 to exercise the parallel driver).
int run_smoke(const Options& opt) {
  struct SmokeRun {
    const char* algo;
    uint64_t budget;
  };
  const SmokeRun runs[] = {{"cao-singhal", 12000}, {"maekawa", 12000}};
  uint64_t total_schedules = 0;
  uint64_t total_violations = 0;
  bool all_covered = true;
  std::ostringstream json;
  json << "{\"dqme_explore_smoke\":1,\"workers\":" << opt.workers
       << ",\"runs\":[\n";
  for (size_t i = 0; i < std::size(runs); ++i) {
    verify::ExplorerConfig cfg;
    cfg.world.algo = mutex::algo_from_string(runs[i].algo);
    cfg.world.n = 3;
    cfg.world.quorum = "grid";
    cfg.world.cs_per_site = 2;
    cfg.dpor = opt.explorer.dpor;
    cfg.max_schedules = runs[i].budget;
    RunOutcome out;
    if (!run_once(cfg, opt.workers, opt.split_depth, "", out)) return 2;
    print_result("[smoke] ", cfg, out);
    total_schedules += out.result.schedules;
    total_violations += out.result.violations.size();
    if (!out.result.complete && !out.result.budget_exhausted)
      all_covered = false;
    if (i > 0) json << ",\n";
    write_json_report(json, cfg, out, nullptr, 0, nullptr, 0);
    if (out.result.budget_exhausted && !opt.frontier_out.empty()) {
      const std::string path =
          opt.frontier_out + "." + std::string(runs[i].algo);
      std::ofstream f(path);
      if (f) out.save_frontier(f);
    }
  }
  json << "],\"total_schedules\":" << total_schedules
       << ",\"total_violations\":" << total_violations << "}\n";
  if (!opt.json_out.empty()) {
    std::ofstream f(opt.json_out);
    if (!f) {
      std::cerr << "cannot write " << opt.json_out << "\n";
      return 2;
    }
    f << json.str();
  }
  const bool pass =
      total_violations == 0 && all_covered && total_schedules >= 10000;
  std::cout << "[smoke] total schedules " << total_schedules
            << ", violations " << total_violations << " -> "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}

// CI gate: the headline exhaustive run — cao-singhal N=4 with one crash
// allowed, source-set DPOR, no budget. Pass = COMPLETE with 0 violations.
int run_n4(const Options& opt) {
  verify::ExplorerConfig cfg;
  cfg.world.algo = mutex::Algo::kCaoSinghal;
  cfg.world.n = 4;
  cfg.world.quorum = "grid";
  cfg.world.cs_per_site = 1;
  cfg.world.fault_tolerant = true;
  cfg.world.max_crashes = 1;
  cfg.world.crash_sites = {3};
  cfg.dpor = opt.explorer.dpor;
  // Honor an explicit --budget (a bounded probe still writes a resumable
  // frontier below); the gate itself only passes on COMPLETE.
  cfg.max_schedules = opt.explorer.max_schedules;
  RunOutcome out;
  if (!run_once(cfg, opt.workers, opt.split_depth, opt.resume, out))
    return 2;
  print_result("[n4] ", cfg, out);
  if (out.result.budget_exhausted && !opt.frontier_out.empty()) {
    std::ofstream f(opt.frontier_out);
    if (f) {
      out.save_frontier(f);
      std::cout << "[n4] wrote " << opt.frontier_out
                << " — continue with --resume " << opt.frontier_out << "\n";
    }
  }
  if (!opt.json_out.empty()) {
    std::ofstream f(opt.json_out);
    if (!f) {
      std::cerr << "cannot write " << opt.json_out << "\n";
      return 2;
    }
    write_json_report(f, cfg, out, nullptr, 0, nullptr, 0);
  }
  const bool pass = out.result.complete && out.result.violations.empty();
  std::cout << "[n4] " << out.result.schedules << " schedules, "
            << out.result.violations.size() << " violations -> "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) try {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }
  if (!opt.preset.empty()) {
    if (opt.preset == "smoke") return run_smoke(opt);
    if (opt.preset == "n4") return run_n4(opt);
    std::cerr << "unknown preset: " << opt.preset << "\n";
    return 2;
  }

  RunOutcome out;
  if (!run_once(opt.explorer, opt.workers, opt.split_depth, opt.resume,
                out))
    return 2;
  // The frontier carries the WorldConfig (and DPOR mode) it was saved
  // under; later artifact writers need the loaded values.
  if (!opt.resume.empty()) opt.explorer.world = out.world();
  print_result("dqme_explore: ", opt.explorer, out);

  const verify::ExploreResult* naive = nullptr;
  verify::ExploreResult naive_result;
  double naive_wall_ms = 0;
  if (opt.compare_naive) {
    verify::ExplorerConfig naive_cfg = opt.explorer;
    naive_cfg.por = false;
    RunOutcome naive_out;
    if (!run_once(naive_cfg, opt.workers, opt.split_depth, "", naive_out))
      return 2;
    print_result("naive:        ", naive_cfg, naive_out);
    naive_result = std::move(naive_out.result);
    naive_wall_ms = naive_out.wall_ms;
    naive = &naive_result;
    if (out.result.schedules > 0)
      std::cout << "POR reduction: " << naive_result.schedules << " / "
                << out.result.schedules << " = "
                << static_cast<double>(naive_result.schedules) /
                       static_cast<double>(out.result.schedules)
                << "x schedules\n";
  }

  const verify::ExploreResult* other = nullptr;
  verify::ExploreResult other_result;
  double other_wall_ms = 0;
  if (opt.compare_dpor && opt.explorer.por) {
    verify::ExplorerConfig other_cfg = opt.explorer;
    other_cfg.dpor = other_cfg.dpor == verify::Dpor::kSource
                         ? verify::Dpor::kSleep
                         : verify::Dpor::kSource;
    RunOutcome other_out;
    if (!run_once(other_cfg, opt.workers, opt.split_depth, "", other_out))
      return 2;
    print_result("compare:      ", other_cfg, other_out);
    other_result = std::move(other_out.result);
    other_wall_ms = other_out.wall_ms;
    other = &other_result;
    const uint64_t sleep_s =
        opt.explorer.dpor == verify::Dpor::kSource ? other_result.schedules
                                                   : out.result.schedules;
    const uint64_t source_s =
        opt.explorer.dpor == verify::Dpor::kSource ? out.result.schedules
                                                   : other_result.schedules;
    if (source_s > 0)
      std::cout << "DPOR reduction: sleep " << sleep_s << " / source "
                << source_s << " = "
                << static_cast<double>(sleep_s) /
                       static_cast<double>(source_s)
                << "x schedules\n";
  }

  if (!write_violation_artifacts(opt, out.result)) return 2;
  if (out.result.budget_exhausted && !opt.frontier_out.empty()) {
    std::ofstream f(opt.frontier_out);
    if (!f) {
      std::cerr << "cannot write " << opt.frontier_out << "\n";
      return 2;
    }
    out.save_frontier(f);
    std::cout << "[frontier] wrote " << opt.frontier_out
              << " — continue with --resume " << opt.frontier_out << "\n";
  }
  if (!opt.json_out.empty()) {
    std::ofstream f(opt.json_out);
    if (!f) {
      std::cerr << "cannot write " << opt.json_out << "\n";
      return 2;
    }
    write_json_report(f, opt.explorer, out, naive, naive_wall_ms, other,
                      other_wall_ms);
  }
  return out.result.violations.empty() ? 0 : 1;
} catch (const dqme::CheckError& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
