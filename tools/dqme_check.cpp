// dqme_check — the invariant checker and analytic-model conformance CLI.
//
// Four modes, sharing one exit-code convention (0 = clean, 1 = a check
// failed, 2 = usage/configuration error):
//
//   (default)   run one experiment with the online InvariantChecker
//               attached and report safety / conservation / liveness plus
//               the Table 1 model divergence:
//                 dqme_check --algo cao-singhal --n 25 --quorum grid
//   --selftest  seeded-negative suite: drives the checker through scripted
//               violations (double CS entry, a lost transfer, a FIFO
//               inversion, a stalled request) and one clean handoff, and
//               verifies each is detected — or not flagged — as expected.
//               Proves the checker can actually catch what it claims to.
//   --trace F   offline structural check of a Chrome trace-event file
//               written by --trace-out: s/f flow arrows pair up and point
//               forward in time, proxy tagging is consistent, CS slices
//               balance and never overlap across sites.
//   --preset smoke
//               the CI conformance gate: a small closed-loop matrix under
//               constant delay, gating invariant cleanliness and
//               model_divergence_* <= --tolerance (default 0.05).
//
// Any mode accepts --report-out FILE to write a machine-readable JSON
// verdict (consumed by CI to archive checker reports).
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.h"
#include "harness/experiment.h"
#include "harness/table.h"
#include "obs/flight_recorder.h"
#include "obs/invariants.h"
#include "obs/model.h"
#include "obs/span.h"

namespace {

using namespace dqme;

void usage(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [mode] [options]\n"
      << "modes:\n"
      << "  (default)        run one checked experiment\n"
      << "  --selftest       verify the checker detects seeded violations\n"
      << "  --trace FILE     structural check of a Chrome trace JSON\n"
      << "  --preset smoke   CI matrix: invariants + model conformance\n"
      << "options (single run / preset):\n"
      << "  --algo NAME --n N --quorum KIND --t TICKS\n"
      << "  --load closed|open --rate R --seed S\n"
      << "  --warmup TICKS --measure TICKS --ft --crash T:SITE\n"
      << "  --liveness-bound TICKS   override the auto watchdog bound\n"
      << "  --tolerance X    max model divergence (default 0.05; single\n"
      << "                   run gates on it only when given explicitly)\n"
      << "  --report-out FILE  write a JSON verdict\n"
      << "  --flightrec-out PATH\n"
      << "                   black-box flight recorder: single run / smoke\n"
      << "                   rows dump PATH(-row) on the first violation;\n"
      << "                   selftest uses PATH as the per-case dump prefix\n"
      << "                   (default flightrec_selftest_)\n";
}

// ------------------------------------------------------------ JSON report

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

struct Report {
  std::string mode;
  bool ok = true;
  uint64_t checks = 0;
  uint64_t violations = 0;
  std::vector<std::string> notes;  // violation texts / per-case verdicts
  std::vector<std::pair<std::string, double>> stats;  // divergences etc.

  void write(std::ostream& os) const {
    os << "{\"mode\": ";
    json_escape(os, mode);
    os << ", \"ok\": " << (ok ? "true" : "false")
       << ", \"checks\": " << checks << ", \"violations\": " << violations
       << ", \"stats\": {";
    for (size_t i = 0; i < stats.size(); ++i) {
      if (i) os << ", ";
      json_escape(os, stats[i].first);
      os << ": " << stats[i].second;
    }
    os << "}, \"notes\": [";
    for (size_t i = 0; i < notes.size(); ++i) {
      if (i) os << ", ";
      json_escape(os, notes[i]);
    }
    os << "]}\n";
  }
};

int emit(const Report& rep, const std::string& report_out) {
  if (!report_out.empty()) {
    std::ofstream f(report_out);
    if (!f) {
      std::cerr << "cannot write " << report_out << "\n";
      return 2;
    }
    rep.write(f);
    std::cout << "[report] wrote " << report_out << "\n";
  }
  return rep.ok ? 0 : 1;
}

// -------------------------------------------------------------- selftest

// Each case scripts the checker through its public entry points — the same
// ones the live hooks call — so a detection failure here means the checker
// would also be blind in production.
struct SelfCase {
  std::string name;
  bool expect_violation = true;
  uint64_t violations = 0;
  std::string first_report;
  // Flight-recorder verdict: the dump file exists and its TAIL — the last
  // recorded event — is the seeded violation. Only meaningful (and only
  // gated) when expect_violation; clean cases must not dump at all.
  bool dump_ok = false;
  bool dumped = false;
  std::string dump_path;
};

// The dump's last trace event (one event per line; the otherData footer
// has no "ph" key, so the last "ph" line IS the newest ring entry).
std::string last_event_line(const std::string& path) {
  std::ifstream f(path);
  std::string line, last;
  while (std::getline(f, line))
    if (line.find("\"ph\":") != std::string::npos) last = line;
  return last;
}

SelfCase run_self_case(const std::string& name, bool expect_violation,
                       Time liveness_bound,
                       const std::function<void(obs::InvariantChecker&)>& fn,
                       Time finish_at, const std::string& dump_prefix) {
  sim::Simulator sim;
  net::Network net(sim, 4, std::make_unique<net::UniformDelay>(500, 1500), 1);
  obs::InvariantOptions opts;
  opts.liveness_bound = liveness_bound;
  obs::InvariantChecker checker(net, opts);
  // Black box per case: every scripted delivery and span edge lands in the
  // ring, so the dump written at first-violation time ends with the
  // violating event preceded by the traffic that caused it.
  obs::FlightRecorder flightrec(64);
  flightrec.set_label("dqme_check --selftest " + name);
  flightrec.set_dump_path(dump_prefix + name + ".json");
  checker.set_flight_recorder(&flightrec);
  fn(checker);
  checker.finish(finish_at);
  SelfCase c;
  c.name = name;
  c.expect_violation = expect_violation;
  c.violations = checker.violations();
  if (!checker.reports().empty()) c.first_report = checker.reports().front();
  c.dumped = flightrec.dumped();
  c.dump_path = dump_prefix + name + ".json";
  if (c.dumped) {
    const std::string tail = last_event_line(c.dump_path);
    c.dump_ok = tail.find("\"violation\"") != std::string::npos;
  }
  return c;
}

net::Message wire(net::Message m, SiteId src, SiteId dst, Time sent_at) {
  m.src = src;
  m.dst = dst;
  m.sent_at = sent_at;
  m.span = span_of(m.req);
  return m;
}

int run_selftest(const std::string& report_out,
                 const std::string& flightrec_out) {
  const ReqId r1{10, 1};  // site 1's request
  const ReqId r2{20, 2};  // site 2's request
  const std::string prefix =
      flightrec_out.empty() ? "flightrec_selftest_" : flightrec_out;
  std::vector<SelfCase> cases;

  // A legal direct-grant -> transfer -> proxied-handoff -> release cycle
  // (§3's Step A/B/C end to end) must produce zero violations.
  cases.push_back(run_self_case(
      "clean-proxy-handoff", false, 0,
      [&](obs::InvariantChecker& ck) {
        ck.on_span_issue(1, kLock0, span_of(r1), 0);
        ck.observe(wire(net::make_reply(0, r1), 0, 1, 5), 10);
        ck.on_span_enter(1, kLock0, span_of(r1), 12);
        ck.on_span_issue(2, kLock0, span_of(r2), 15);
        ck.observe(wire(net::make_transfer(r2, 0, r1), 0, 1, 16), 20);
        ck.on_span_exit(1, kLock0, span_of(r1), 25);
        ck.observe(wire(net::make_release(r1, r2), 1, 0, 25), 28);
        ck.observe(wire(net::make_reply(0, r2), 1, 2, 25), 30);
        ck.on_span_enter(2, kLock0, span_of(r2), 31);
        ck.on_span_exit(2, kLock0, span_of(r2), 40);
        ck.observe(wire(net::make_release(r2, ReqId{}), 2, 0, 40), 45);
      },
      50, prefix));

  // Safety: two sites inside the CS at once (Theorem 1 broken).
  cases.push_back(run_self_case(
      "double-cs-entry", true, 0,
      [&](obs::InvariantChecker& ck) {
        ck.on_span_issue(1, kLock0, span_of(r1), 0);
        ck.on_span_issue(2, kLock0, span_of(r2), 0);
        ck.on_span_enter(1, kLock0, span_of(r1), 10);
        ck.on_span_enter(2, kLock0, span_of(r2), 11);  // overlap
        ck.on_span_exit(1, kLock0, span_of(r1), 20);
        ck.on_span_exit(2, kLock0, span_of(r2), 21);
      },
      30, prefix));

  // Safety: an arbiter double-grants its permission.
  cases.push_back(run_self_case(
      "double-grant", true, 0,
      [&](obs::InvariantChecker& ck) {
        ck.on_span_issue(1, kLock0, span_of(r1), 0);
        ck.on_span_issue(2, kLock0, span_of(r2), 0);
        ck.observe(wire(net::make_reply(0, r1), 0, 1, 5), 10);
        ck.observe(wire(net::make_reply(0, r2), 0, 2, 6), 11);  // still held
      },
      30, prefix));

  // Conservation: an accepted transfer the holder never discharges — the
  // lost-permission leak Lemma 3's liveness argument forbids.
  cases.push_back(run_self_case(
      "lost-transfer", true, 0,
      [&](obs::InvariantChecker& ck) {
        ck.on_span_issue(1, kLock0, span_of(r1), 0);
        ck.on_span_issue(2, kLock0, span_of(r2), 0);
        ck.observe(wire(net::make_reply(0, r1), 0, 1, 5), 10);
        ck.on_span_enter(1, kLock0, span_of(r1), 12);
        ck.observe(wire(net::make_transfer(r2, 0, r1), 0, 1, 14), 18);
        ck.on_span_exit(1, kLock0, span_of(r1), 25);  // exits without forwarding
      },
      60, prefix));

  // Conservation: FIFO inversion on one channel.
  cases.push_back(run_self_case(
      "fifo-inversion", true, 0,
      [&](obs::InvariantChecker& ck) {
        ck.observe(wire(net::make_request(r1), 1, 0, 100), 110);
        ck.observe(wire(net::make_request(r1), 1, 0, 50), 115);  // older
      },
      120, prefix));

  // Liveness: a request open past the watchdog bound with no progress.
  cases.push_back(run_self_case(
      "stalled-request", true, 1000,
      [&](obs::InvariantChecker& ck) {
        ck.on_span_issue(1, kLock0, span_of(r1), 0);
      },
      5000, prefix));

  // Liveness, crash-aware: the same stall is written off when the owner
  // crashed — §6 requires recovery to stay quiet, not be reported.
  cases.push_back(run_self_case(
      "crashed-owner-quiet", false, 1000,
      [&](obs::InvariantChecker& ck) {
        ck.on_span_issue(1, kLock0, span_of(r1), 0);
        ck.on_crash(1);
      },
      5000, prefix));

  Report rep;
  rep.mode = "selftest";
  harness::Table t({"case", "expect", "violations", "flightrec", "verdict"});
  for (const SelfCase& c : cases) {
    const bool detect = (c.violations > 0) == c.expect_violation;
    // Seeded negatives must also leave a usable black box behind: a dump
    // exists and its newest ring entry is the violation. Clean cases must
    // not dump (no violation ever fired).
    const bool box = c.expect_violation ? c.dump_ok : !c.dumped;
    const bool pass = detect && box;
    rep.ok = rep.ok && pass;
    ++rep.checks;
    if (!pass) ++rep.violations;
    std::ostringstream note;
    note << c.name << ": " << (pass ? "pass" : "FAIL");
    if (!detect) note << " (detection)";
    if (!box) note << " (flight recorder)";
    if (!c.first_report.empty()) note << " [" << c.first_report << "]";
    rep.notes.push_back(note.str());
    t.add_row({c.name, c.expect_violation ? "violation" : "clean",
               harness::Table::integer(c.violations),
               c.expect_violation
                   ? (c.dump_ok ? c.dump_path : "BAD DUMP")
                   : (c.dumped ? "UNEXPECTED DUMP" : "-"),
               pass ? "pass" : "FAIL"});
  }
  std::cout << "dqme_check --selftest: seeded-negative detection\n\n";
  t.print(std::cout);
  std::cout << (rep.ok ? "\nOK: every seeded violation detected (and black-"
                         "boxed), clean cases quiet.\n"
                       : "\nFAILED: the checker missed a seeded violation, "
                         "flagged a clean case, or wrote a bad dump.\n");
  return emit(rep, report_out);
}

// ------------------------------------------------------------ trace mode

// The writer keeps one event per line, so a line scanner is a full parser
// for our own output (and fails loudly on anything else).
bool field_str(const std::string& line, const std::string& key,
               std::string& out) {
  const std::string probe = "\"" + key + "\": \"";
  const auto p = line.find(probe);
  if (p == std::string::npos) return false;
  const auto e = line.find('"', p + probe.size());
  if (e == std::string::npos) return false;
  out = line.substr(p + probe.size(), e - p - probe.size());
  return true;
}

bool field_num(const std::string& line, const std::string& key,
               long long& out) {
  const std::string probe = "\"" + key + "\": ";
  const auto p = line.find(probe);
  if (p == std::string::npos) return false;
  out = std::atoll(line.c_str() + p + probe.size());
  return true;
}

int run_trace_check(const std::string& path, const std::string& report_out) {
  std::ifstream f(path);
  if (!f) {
    std::cerr << "cannot read " << path << "\n";
    return 2;
  }
  Report rep;
  rep.mode = "trace";

  struct Flow {
    int sends = 0, finishes = 0;
    long long s_ts = 0, f_ts = 0;
  };
  std::map<long long, Flow> flows;
  struct Interval {
    long long begin, end, tid;
  };
  std::map<long long, long long> open_cs;  // tid -> B ts
  std::vector<Interval> cs;
  std::map<long long, int> open_requests;  // async id -> depth
  uint64_t events = 0;

  auto flag = [&](const std::string& what) {
    ++rep.violations;
    if (rep.notes.size() < 32) rep.notes.push_back(what);
  };

  std::string line;
  while (std::getline(f, line)) {
    std::string ph;
    if (!field_str(line, "ph", ph)) continue;
    ++events;
    std::string name, cat;
    field_str(line, "name", name);
    field_str(line, "cat", cat);
    long long ts = 0, tid = 0, id = 0;
    field_num(line, "ts", ts);
    field_num(line, "tid", tid);

    // Proxy tagging: cat "proxy" if and only if the proxied-reply name —
    // the paper's 1T handoff must be identifiable in the viewer.
    ++rep.checks;
    if ((cat == "proxy") != (name == "reply (proxy)"))
      flag("proxy tag mismatch: name '" + name + "' cat '" + cat + "'");

    if ((ph == "s" || ph == "f") && field_num(line, "id", id)) {
      Flow& fl = flows[id];
      if (ph == "s") {
        ++fl.sends;
        fl.s_ts = ts;
      } else {
        ++fl.finishes;
        fl.f_ts = ts;
      }
    } else if (ph == "B" && name == "CS") {
      if (open_cs.count(tid)) flag("nested CS begin on site lane " +
                                   std::to_string(tid));
      open_cs[tid] = ts;
    } else if (ph == "E") {
      auto it = open_cs.find(tid);
      if (it == open_cs.end()) {
        flag("CS end with no begin on site lane " + std::to_string(tid));
      } else {
        cs.push_back({it->second, ts, tid});
        open_cs.erase(it);
      }
    } else if (ph == "b" && field_num(line, "id", id)) {
      ++open_requests[id];
    } else if (ph == "e" && field_num(line, "id", id)) {
      if (--open_requests[id] < 0)
        flag("async end before begin, id " + std::to_string(id));
    }
  }
  if (events == 0) {
    std::cerr << path << ": no trace events found\n";
    return 2;
  }

  // Every flow arrow pairs one send with one finish, forward in time.
  for (const auto& [id, fl] : flows) {
    ++rep.checks;
    if (fl.sends != 1 || fl.finishes != 1)
      flag("flow " + std::to_string(id) + ": " + std::to_string(fl.sends) +
           " s / " + std::to_string(fl.finishes) + " f events");
    else if (fl.f_ts < fl.s_ts)
      flag("flow " + std::to_string(id) + " delivered at " +
           std::to_string(fl.f_ts) + " before send at " +
           std::to_string(fl.s_ts));
  }
  for (const auto& [tid, ts] : open_cs)
    flag("unclosed CS on site lane " + std::to_string(tid) + " from " +
         std::to_string(ts));
  for (const auto& [id, depth] : open_requests)
    if (depth != 0) flag("unbalanced request span, id " + std::to_string(id));

  // Mutual exclusion, re-derived from the rendered intervals alone.
  std::sort(cs.begin(), cs.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  for (size_t i = 1; i < cs.size(); ++i) {
    ++rep.checks;
    if (cs[i].begin < cs[i - 1].end)
      flag("CS overlap: site " + std::to_string(cs[i].tid) + " at " +
           std::to_string(cs[i].begin) + " enters before site " +
           std::to_string(cs[i - 1].tid) + " exits at " +
           std::to_string(cs[i - 1].end));
  }

  rep.ok = rep.violations == 0;
  std::cout << "dqme_check --trace " << path << ": " << events
            << " events, " << flows.size() << " flows, " << cs.size()
            << " CS intervals\n";
  for (const std::string& n : rep.notes) std::cout << "  " << n << "\n";
  std::cout << (rep.ok ? "OK: trace is structurally sound.\n"
                       : "FAILED: structural violations in trace.\n");
  return emit(rep, report_out);
}

// ------------------------------------------------- single run and preset

double gauge_or(const harness::ExperimentResult& r, const char* name,
                double fallback) {
  const double* g = r.registry.find_gauge(name);
  return g != nullptr ? *g : fallback;
}

void describe_run(const harness::ExperimentConfig& cfg,
                  const harness::ExperimentResult& r, std::ostream& os) {
  using harness::Table;
  Table t({"check", "value"});
  t.add_row({"invariant checks", Table::integer(r.invariant_checks)});
  t.add_row({"invariant violations", Table::integer(r.invariant_violations)});
  t.add_row({"ME violations (metrics)", Table::integer(r.summary.violations)});
  t.add_row({"drained clean", r.drained_clean ? "yes" : "NO"});
  t.add_row({"CS completed", Table::integer(r.summary.completed)});
  t.add_row({"sync delay / T", Table::num(r.sync_delay_in_t, 3)});
  t.add_row({"model sync delay pred / T",
             Table::num(gauge_or(r, "model.sync_delay_pred_t", 0), 3)});
  t.add_row({"model divergence (delay)",
             Table::num(gauge_or(r, "model_divergence_sync_delay", 0), 4)});
  t.add_row({"model divergence (msgs)",
             Table::num(gauge_or(r, "model_divergence_msgs", 0), 4)});
  t.print(os);
  for (const std::string& rep : r.invariant_reports)
    os << "  violation: " << rep << "\n";
  (void)cfg;
}

int run_single(harness::ExperimentConfig cfg, double rate, double tolerance,
               bool gate_divergence, const std::string& report_out,
               const std::string& flightrec_out) {
  cfg.check_invariants = true;
  cfg.flight_recorder_dump = flightrec_out;
  if (cfg.workload.mode == harness::Workload::Config::Mode::kOpen) {
    const double capacity = 1.0 / static_cast<double>(
                                      2 * cfg.mean_delay +
                                      cfg.workload.cs_duration);
    cfg.workload.arrival_rate = rate * capacity / cfg.n;
  }
  const harness::ExperimentResult r = harness::run_experiment(cfg);

  std::cout << "dqme_check: " << mutex::to_string(cfg.algo)
            << "  N=" << cfg.n;
  if (mutex::algo_uses_quorum(cfg.algo))
    std::cout << "  quorum=" << cfg.quorum << "  K=" << r.mean_quorum_size;
  std::cout << "  seed=" << cfg.seed << "\n\n";
  describe_run(cfg, r, std::cout);

  Report rep;
  rep.mode = "run";
  rep.checks = r.invariant_checks;
  rep.violations = r.invariant_violations;
  rep.notes = r.invariant_reports;
  const double div_delay = gauge_or(r, "model_divergence_sync_delay", 0);
  const double div_msgs = gauge_or(r, "model_divergence_msgs", 0);
  rep.stats = {{"model_divergence_sync_delay", div_delay},
               {"model_divergence_msgs", div_msgs}};
  rep.ok = r.invariant_violations == 0 && r.summary.violations == 0 &&
           r.drained_clean;
  if (gate_divergence)
    rep.ok = rep.ok && div_delay <= tolerance && div_msgs <= tolerance;
  std::cout << (rep.ok ? "\nOK: invariants hold"
                       : "\nFAILED: checks failed")
            << (gate_divergence ? " (divergence gated)" : "") << ".\n";
  return emit(rep, report_out);
}

int run_smoke(double tolerance, uint64_t seed, const std::string& report_out,
              const std::string& flightrec_out) {
  // Closed loop under constant delay: the regime where Table 1's closed
  // forms are exact, so divergence is protocol error, not workload noise.
  struct Row {
    mutex::Algo algo;
    int n;
    const char* quorum;
  };
  // Grid quorums only: with FPP's minimal pairwise overlap a successor's
  // completing grant often routes through a waiter's yield instead of the
  // holder's release, so 2-hop-classified entries land below 2T and the
  // count-based mixed model overestimates by ~6% — structural, not noise.
  const Row rows[] = {
      {mutex::Algo::kCaoSinghal, 25, "grid"},
      {mutex::Algo::kCaoSinghal, 49, "grid"},
      {mutex::Algo::kMaekawa, 25, "grid"},
      {mutex::Algo::kCaoSinghalNoProxy, 25, "grid"},
  };
  Report rep;
  rep.mode = "smoke";
  harness::Table t({"config", "invariants", "delay/T", "pred/T",
                    "div(delay)", "div(msgs)", "verdict"});
  for (const Row& row : rows) {
    harness::ExperimentConfig cfg;
    cfg.algo = row.algo;
    cfg.n = row.n;
    cfg.quorum = row.quorum;
    cfg.delay_kind = harness::ExperimentConfig::DelayKind::kConstant;
    cfg.seed = seed;
    cfg.check_invariants = true;
    const std::string label = std::string(mutex::to_string(row.algo)) +
                              "/N" + std::to_string(row.n);
    if (!flightrec_out.empty()) {
      // Per-row dump: insert the row label before the extension so a
      // failing matrix leaves one black box per configuration.
      std::string stem = flightrec_out, ext;
      const auto dot = stem.rfind('.');
      if (dot != std::string::npos && dot > stem.rfind('/') + 1) {
        ext = stem.substr(dot);
        stem.resize(dot);
      }
      std::string tag = label;
      std::replace(tag.begin(), tag.end(), '/', '-');
      cfg.flight_recorder_dump = stem + "-" + tag + ext;
    }
    const harness::ExperimentResult r = harness::run_experiment(cfg);
    const double div_delay = gauge_or(r, "model_divergence_sync_delay", 0);
    const double div_msgs = gauge_or(r, "model_divergence_msgs", 0);
    const bool ok = r.invariant_violations == 0 &&
                    r.summary.violations == 0 && r.drained_clean &&
                    div_delay <= tolerance && div_msgs <= tolerance;
    rep.ok = rep.ok && ok;
    rep.checks += r.invariant_checks;
    rep.violations += r.invariant_violations;
    rep.stats.push_back({label + ".div_delay", div_delay});
    rep.stats.push_back({label + ".div_msgs", div_msgs});
    for (const std::string& note : r.invariant_reports)
      rep.notes.push_back(label + ": " + note);
    if (!ok && r.invariant_reports.empty())
      rep.notes.push_back(label + ": divergence above tolerance");
    t.add_row({label,
               r.invariant_violations == 0 ? "clean" : "VIOLATED",
               harness::Table::num(r.sync_delay_in_t, 3),
               harness::Table::num(gauge_or(r, "model.sync_delay_pred_t", 0),
                                   3),
               harness::Table::num(div_delay, 4),
               harness::Table::num(div_msgs, 4), ok ? "pass" : "FAIL"});
  }
  std::cout << "dqme_check --preset smoke (tolerance "
            << harness::Table::num(tolerance, 3) << ", seed " << seed
            << ")\n\n";
  t.print(std::cout);
  std::cout << (rep.ok ? "\nOK: invariants hold and Table 1 conformance is "
                         "within tolerance.\n"
                       : "\nFAILED: invariant violation or model "
                         "divergence above tolerance.\n");
  return emit(rep, report_out);
}

}  // namespace

int main(int argc, char** argv) try {
  harness::ExperimentConfig cfg;
  double rate = 0.5;
  double tolerance = 0.05;
  bool gate_divergence = false;
  bool selftest = false;
  std::string trace_path, preset, report_out, flightrec_out;

  for (int i = 1; i < argc; ++i) {
    // Accept both "--flag value" and "--flag=value" (CI uses the latter).
    std::string a = argv[i];
    std::string inline_val;
    bool has_inline = false;
    if (a.rfind("--", 0) == 0) {
      const auto eq = a.find('=');
      if (eq != std::string::npos) {
        inline_val = a.substr(eq + 1);
        a.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) {
        has_inline = false;
        return inline_val.c_str();
      }
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else if (a == "--selftest") {
      selftest = true;
    } else if (a == "--trace") {
      trace_path = next();
    } else if (a == "--preset") {
      preset = next();
    } else if (a == "--report-out") {
      report_out = next();
    } else if (a == "--flightrec-out") {
      flightrec_out = next();
    } else if (a == "--tolerance") {
      tolerance = std::atof(next());
      gate_divergence = true;
    } else if (a == "--algo") {
      cfg.algo = mutex::algo_from_string(next());
    } else if (a == "--n") {
      cfg.n = std::atoi(next());
    } else if (a == "--quorum") {
      cfg.quorum = next();
    } else if (a == "--t") {
      cfg.mean_delay = std::atoll(next());
    } else if (a == "--load") {
      const std::string mode = next();
      if (mode == "closed")
        cfg.workload.mode = harness::Workload::Config::Mode::kClosed;
      else if (mode == "open")
        cfg.workload.mode = harness::Workload::Config::Mode::kOpen;
      else {
        std::cerr << "unknown load mode: " << mode << "\n";
        return 2;
      }
    } else if (a == "--rate") {
      rate = std::atof(next());
    } else if (a == "--warmup") {
      cfg.warmup = std::atoll(next());
    } else if (a == "--measure") {
      cfg.measure = std::atoll(next());
    } else if (a == "--seed") {
      cfg.seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (a == "--ft") {
      cfg.options.fault_tolerant = true;
    } else if (a == "--liveness-bound") {
      cfg.liveness_bound = std::atoll(next());
    } else if (a == "--crash") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      if (colon == std::string::npos) {
        std::cerr << "--crash expects T:SITE\n";
        return 2;
      }
      cfg.crashes.push_back({std::atoll(spec.substr(0, colon).c_str()),
                             std::atoi(spec.substr(colon + 1).c_str())});
    } else {
      std::cerr << "unknown option: " << a << "\n";
      usage(argv[0]);
      return 2;
    }
    if (has_inline) {
      std::cerr << a << " does not take a value\n";
      return 2;
    }
  }

  if (selftest) return run_selftest(report_out, flightrec_out);
  if (!trace_path.empty()) return run_trace_check(trace_path, report_out);
  if (!preset.empty()) {
    if (preset != "smoke") {
      std::cerr << "unknown preset: " << preset << "\n";
      return 2;
    }
    return run_smoke(tolerance, cfg.seed, report_out, flightrec_out);
  }
  return run_single(cfg, rate, tolerance, gate_divergence, report_out,
                    flightrec_out);
} catch (const dqme::CheckError& e) {
  std::cerr << "configuration error: " << e.what() << "\n";
  return 2;
}
